#include "obs/profile.h"

#include <algorithm>
#include <bit>
#include <charconv>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace janus {
namespace obs {

std::string ProfileSite::Label() const {
  if (!known()) return "?";
  if (function.empty()) return "line:" + std::to_string(line);
  if (line <= 0) return function;
  return function + ":" + std::to_string(line);
}

// ---------------------------------------------------------------------------
// PlanProfile
// ---------------------------------------------------------------------------

PlanProfile::PlanProfile(std::vector<ProfileNodeInfo> nodes)
    : nodes_(std::move(nodes)),
      slots_(std::make_unique<Slot[]>(nodes_.empty() ? 1 : nodes_.size())) {}

void PlanProfile::Record(int index, std::int64_t dur_ns) {
  if (index < 0 || index >= num_nodes()) return;
  if (dur_ns < 0) dur_ns = 0;
  Slot& slot = slots_[static_cast<std::size_t>(index)];
  const auto ns = static_cast<std::uint64_t>(dur_ns);
  slot.count.fetch_add(1, std::memory_order_relaxed);
  slot.total_ns.fetch_add(ns, std::memory_order_relaxed);
  // Racy max is fine: a lost update can only under-report by one sample.
  std::uint64_t seen = slot.max_ns.load(std::memory_order_relaxed);
  while (ns > seen &&
         !slot.max_ns.compare_exchange_weak(seen, ns,
                                            std::memory_order_relaxed)) {
  }
  const int bucket =
      std::min(kNumBuckets - 1,
               ns == 0 ? 0 : static_cast<int>(std::bit_width(ns)) - 1);
  slot.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
}

void PlanProfile::SetKey(std::string unit, std::string variant, int level) {
  unit_ = std::move(unit);
  variant_ = std::move(variant);
  level_ = level;
}

PlanProfile::NodeSnapshot PlanProfile::Snapshot(int index) const {
  NodeSnapshot snap;
  if (index < 0 || index >= num_nodes()) return snap;
  const Slot& slot = slots_[static_cast<std::size_t>(index)];
  snap.count = slot.count.load(std::memory_order_relaxed);
  snap.total_ns = slot.total_ns.load(std::memory_order_relaxed);
  snap.max_ns = slot.max_ns.load(std::memory_order_relaxed);
  for (int b = 0; b < kNumBuckets; ++b) {
    snap.buckets[b] = slot.buckets[b].load(std::memory_order_relaxed);
  }
  return snap;
}

// ---------------------------------------------------------------------------
// ProfileRegistry
// ---------------------------------------------------------------------------

ProfileRegistry& ProfileRegistry::Global() {
  // Leaked: the JANUS_PROFILE atexit exporter must always find it alive.
  static ProfileRegistry* registry = new ProfileRegistry();
  return *registry;
}

void ProfileRegistry::Register(std::shared_ptr<PlanProfile> profile) {
  if (profile == nullptr) return;
  const std::lock_guard<std::mutex> lock(mu_);
  if (profiles_.size() >= kMaxProfiles) {
    profiles_.erase(profiles_.begin());
    ++dropped_;
  }
  profiles_.push_back(std::move(profile));
}

std::vector<std::shared_ptr<PlanProfile>> ProfileRegistry::Profiles() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return profiles_;
}

std::uint64_t ProfileRegistry::dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void ProfileRegistry::Reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  profiles_.clear();
  dropped_ = 0;
}

// ---------------------------------------------------------------------------
// Enable flag
// ---------------------------------------------------------------------------

namespace internal {
std::atomic<bool> profiling_active{false};
thread_local std::uint32_t profile_sample_countdown = 0;
}  // namespace internal

void EnableProfiling() {
  internal::profiling_active.store(true, std::memory_order_relaxed);
}

void DisableProfiling() {
  internal::profiling_active.store(false, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

namespace {

// Emits the scaled samples of one plan node (splitting fused-region time
// across members) into *out.
void AppendNodeSamples(const PlanProfile& profile, int index,
                       std::vector<ProfileSample>* out) {
  const PlanProfile::NodeSnapshot snap = profile.Snapshot(index);
  if (snap.count == 0) return;
  const ProfileNodeInfo& info =
      profile.nodes()[static_cast<std::size_t>(index)];
  const std::uint64_t scale = kProfileSampleEvery;
  const auto emit = [&](const ProfileNodeInfo& node, std::uint64_t total_ns,
                        std::uint64_t max_ns) {
    ProfileSample sample;
    sample.unit = profile.unit();
    sample.variant = profile.variant();
    sample.level = profile.despecialization_level();
    sample.function = node.site.function;
    sample.line = node.site.line;
    sample.stmt = node.site.stmt;
    sample.op = node.op;
    sample.node = node.name;
    sample.count = snap.count * scale;
    sample.total_ns = total_ns * scale;
    sample.max_ns = max_ns * scale;
    out->push_back(std::move(sample));
  };
  if (info.members.empty()) {
    emit(info, snap.total_ns, snap.max_ns);
    return;
  }
  // Fused region: the timer wraps the whole region dispatch, so the split
  // across members is an even-share estimate (documented in DESIGN.md §13).
  const auto num_members = static_cast<std::uint64_t>(info.members.size());
  for (const ProfileNodeInfo& member : info.members) {
    emit(member, snap.total_ns / num_members, snap.max_ns / num_members);
  }
}

struct UnitKey {
  std::string unit;
  std::string variant;
  int level;
  bool operator<(const UnitKey& other) const {
    if (unit != other.unit) return unit < other.unit;
    if (variant != other.variant) return variant < other.variant;
    return level < other.level;
  }
};

void JsonEscape(std::ostringstream& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\r':
        out << "\\r";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << hex;
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

std::vector<ProfileSample> CollectProfileSamples() {
  std::vector<ProfileSample> samples;
  for (const auto& profile : ProfileRegistry::Global().Profiles()) {
    for (int i = 0; i < profile->num_nodes(); ++i) {
      AppendNodeSamples(*profile, i, &samples);
    }
  }
  return samples;
}

std::vector<ProfileUnitTotals> CollectProfileUnitTotals() {
  std::map<UnitKey, ProfileUnitTotals> by_key;
  for (const auto& profile : ProfileRegistry::Global().Profiles()) {
    const UnitKey key{profile->unit(), profile->variant(),
                      profile->despecialization_level()};
    ProfileUnitTotals& totals = by_key[key];
    totals.unit = key.unit;
    totals.variant = key.variant;
    totals.level = key.level;
    totals.generation_ns += profile->generation_ns();
    totals.validation_ns += profile->validation_ns();
    totals.runs += profile->runs();
    for (int i = 0; i < profile->num_nodes(); ++i) {
      totals.execution_ns +=
          profile->Snapshot(i).total_ns * kProfileSampleEvery;
    }
  }
  std::vector<ProfileUnitTotals> out;
  out.reserve(by_key.size());
  for (auto& [key, totals] : by_key) out.push_back(std::move(totals));
  return out;
}

std::map<std::string, double> ProfileNodeMeanNs() {
  struct Acc {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
  };
  std::map<std::string, Acc> by_name;
  for (const auto& profile : ProfileRegistry::Global().Profiles()) {
    for (int i = 0; i < profile->num_nodes(); ++i) {
      const PlanProfile::NodeSnapshot snap = profile->Snapshot(i);
      if (snap.count == 0) continue;
      const ProfileNodeInfo& info =
          profile->nodes()[static_cast<std::size_t>(i)];
      if (info.members.empty()) {
        Acc& acc = by_name[info.name];
        acc.count += snap.count;
        acc.total_ns += snap.total_ns;
      } else {
        const auto n = static_cast<std::uint64_t>(info.members.size());
        for (const ProfileNodeInfo& member : info.members) {
          Acc& acc = by_name[member.name];
          acc.count += snap.count;
          acc.total_ns += snap.total_ns / n;
        }
      }
    }
  }
  std::map<std::string, double> means;
  for (const auto& [name, acc] : by_name) {
    if (acc.count > 0) {
      means[name] = static_cast<double>(acc.total_ns) /
                    static_cast<double>(acc.count);
    }
  }
  return means;
}

// ---------------------------------------------------------------------------
// Renderers
// ---------------------------------------------------------------------------

namespace {

std::string SiteLabelOf(const ProfileSample& sample) {
  ProfileSite site;
  site.function = sample.function;
  site.line = sample.line;
  site.stmt = sample.stmt;
  return site.Label();
}

}  // namespace

std::string RenderProfileText() {
  const std::vector<ProfileSample> samples = CollectProfileSamples();
  const std::vector<ProfileUnitTotals> units = CollectProfileUnitTotals();
  std::ostringstream out;
  out << "janus continuous profile (sample stride " << kProfileSampleEvery
      << ", times are scaled estimates)\n";
  out << "profiling " << (ProfilingEnabled() ? "enabled" : "disabled")
      << "; " << ProfileRegistry::Global().Profiles().size()
      << " plan(s) registered, " << ProfileRegistry::Global().dropped()
      << " dropped\n\n";

  out << "== units (inclusive phase split) ==\n";
  for (const ProfileUnitTotals& unit : units) {
    out << (unit.unit.empty() ? "<unattributed>" : unit.unit) << " ["
        << unit.variant << " L" << unit.level << "] runs=" << unit.runs
        << " generation=" << unit.generation_ns
        << "ns validation=" << unit.validation_ns
        << "ns execution~=" << unit.execution_ns << "ns\n";
  }

  // Rollup by source line.
  struct LineAcc {
    std::uint64_t total_ns = 0;
    std::uint64_t count = 0;
  };
  std::map<std::string, LineAcc> by_line;
  std::uint64_t grand_total = 0;
  for (const ProfileSample& sample : samples) {
    LineAcc& acc = by_line[SiteLabelOf(sample)];
    acc.total_ns += sample.total_ns;
    acc.count += sample.count;
    grand_total += sample.total_ns;
  }
  std::vector<std::pair<std::string, LineAcc>> lines(by_line.begin(),
                                                     by_line.end());
  std::sort(lines.begin(), lines.end(), [](const auto& a, const auto& b) {
    return a.second.total_ns > b.second.total_ns;
  });
  out << "\n== by source line ==\n";
  for (const auto& [label, acc] : lines) {
    const double share =
        grand_total > 0 ? 100.0 * static_cast<double>(acc.total_ns) /
                              static_cast<double>(grand_total)
                        : 0.0;
    char pct[16];
    std::snprintf(pct, sizeof(pct), "%5.1f%%", share);
    out << pct << "  " << acc.total_ns << "ns  " << label << "\n";
  }

  // Top nodes.
  std::vector<ProfileSample> top = samples;
  std::sort(top.begin(), top.end(),
            [](const ProfileSample& a, const ProfileSample& b) {
              return a.total_ns > b.total_ns;
            });
  if (top.size() > 32) top.resize(32);
  out << "\n== top nodes ==\n";
  for (const ProfileSample& sample : top) {
    out << sample.total_ns << "ns  count=" << sample.count
        << "  max=" << sample.max_ns << "ns  " << sample.op << " "
        << sample.node << "  @" << SiteLabelOf(sample);
    if (!sample.unit.empty()) {
      out << "  [" << sample.unit << " " << sample.variant << " L"
          << sample.level << "]";
    }
    out << "\n";
  }
  return out.str();
}

std::string RenderProfileJson() {
  const std::vector<ProfileSample> samples = CollectProfileSamples();
  const std::vector<ProfileUnitTotals> units = CollectProfileUnitTotals();
  std::ostringstream out;
  out << "{\"enabled\":" << (ProfilingEnabled() ? "true" : "false")
      << ",\"sample_stride\":" << kProfileSampleEvery << ",\"units\":[";
  bool first_unit = true;
  for (const ProfileUnitTotals& unit : units) {
    if (!first_unit) out << ",";
    first_unit = false;
    out << "{\"unit\":\"";
    JsonEscape(out, unit.unit);
    out << "\",\"variant\":\"";
    JsonEscape(out, unit.variant);
    out << "\",\"level\":" << unit.level << ",\"runs\":" << unit.runs
        << ",\"generation_ns\":" << unit.generation_ns
        << ",\"validation_ns\":" << unit.validation_ns
        << ",\"execution_ns\":" << unit.execution_ns;

    // Per-line rollup and top nodes within this unit key.
    struct LineAcc {
      std::string function;
      int line = 0;
      std::uint64_t total_ns = 0;
      std::uint64_t count = 0;
    };
    std::map<std::pair<std::string, int>, LineAcc> by_line;
    std::vector<const ProfileSample*> unit_samples;
    for (const ProfileSample& sample : samples) {
      if (sample.unit != unit.unit || sample.variant != unit.variant ||
          sample.level != unit.level) {
        continue;
      }
      unit_samples.push_back(&sample);
      LineAcc& acc = by_line[{sample.function, sample.line}];
      acc.function = sample.function;
      acc.line = sample.line;
      acc.total_ns += sample.total_ns;
      acc.count += sample.count;
    }
    out << ",\"lines\":[";
    bool first_line = true;
    for (const auto& [key, acc] : by_line) {
      if (!first_line) out << ",";
      first_line = false;
      out << "{\"function\":\"";
      JsonEscape(out, acc.function);
      out << "\",\"line\":" << acc.line
          << ",\"execution_ns\":" << acc.total_ns
          << ",\"count\":" << acc.count << "}";
    }
    out << "],\"top_nodes\":[";
    std::vector<const ProfileSample*> top = unit_samples;
    std::sort(top.begin(), top.end(),
              [](const ProfileSample* a, const ProfileSample* b) {
                return a->total_ns > b->total_ns;
              });
    if (top.size() > 16) top.resize(16);
    bool first_node = true;
    for (const ProfileSample* sample : top) {
      if (!first_node) out << ",";
      first_node = false;
      out << "{\"node\":\"";
      JsonEscape(out, sample->node);
      out << "\",\"op\":\"";
      JsonEscape(out, sample->op);
      out << "\",\"function\":\"";
      JsonEscape(out, sample->function);
      out << "\",\"line\":" << sample->line
          << ",\"count\":" << sample->count
          << ",\"total_ns\":" << sample->total_ns
          << ",\"max_ns\":" << sample->max_ns << "}";
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

std::string RenderFoldedStacks() {
  // Merge identical stacks: re-registered plans for the same unit produce
  // samples with the same frames.
  std::map<std::string, std::uint64_t> folded;
  for (const ProfileSample& sample : CollectProfileSamples()) {
    if (sample.total_ns == 0) continue;
    std::string stack = sample.unit.empty() ? "<unattributed>" : sample.unit;
    stack += ';';
    stack += sample.function.empty() ? "?" : sample.function;
    stack += ';';
    stack += SiteLabelOf(sample);
    stack += ';';
    stack += sample.op;
    folded[stack] += sample.total_ns;
  }
  std::ostringstream out;
  for (const auto& [stack, ns] : folded) {
    out << stack << ' ' << ns << '\n';
  }
  return out.str();
}

void WriteFoldedStacks(const std::string& path) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    JANUS_LOG(kError) << "cannot open profile output file '" << path << "'";
    return;
  }
  file << RenderFoldedStacks();
}

// ---------------------------------------------------------------------------
// Folded parsing + diffing
// ---------------------------------------------------------------------------

bool ParseFoldedProfile(std::string_view text, FoldedProfile* out,
                        std::string* error) {
  FoldedProfile parsed;
  int line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_no;
    if (line.empty()) continue;
    const std::size_t space = line.rfind(' ');
    if (space == std::string_view::npos || space == 0) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) +
                 ": expected '<stack> <value>'";
      }
      return false;
    }
    const std::string_view value_text = line.substr(space + 1);
    double value = 0;
    const auto [ptr, ec] = std::from_chars(
        value_text.data(), value_text.data() + value_text.size(), value);
    if (ec != std::errc() || ptr != value_text.data() + value_text.size() ||
        value < 0) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) +
                 ": malformed sample value '" + std::string(value_text) + "'";
      }
      return false;
    }
    parsed.stack_ns[std::string(line.substr(0, space))] += value;
    parsed.total_ns += value;
  }
  if (out != nullptr) *out = std::move(parsed);
  return true;
}

ProfileDiffResult DiffProfilesBySite(const FoldedProfile& before,
                                     const FoldedProfile& after) {
  // Key on the stack minus its leaf (op) frame: the same source site keeps
  // its identity across rewrites that change which ops implement it.
  const auto site_of = [](const std::string& stack) {
    const std::size_t semi = stack.rfind(';');
    return semi == std::string::npos ? stack : stack.substr(0, semi);
  };
  std::map<std::string, std::pair<double, double>> by_site;
  for (const auto& [stack, ns] : before.stack_ns) {
    by_site[site_of(stack)].first += ns;
  }
  for (const auto& [stack, ns] : after.stack_ns) {
    by_site[site_of(stack)].second += ns;
  }
  ProfileDiffResult result;
  for (const auto& [site, ns] : by_site) {
    ProfileDiffEntry entry;
    entry.site = site;
    entry.before_ns = ns.first;
    entry.after_ns = ns.second;
    entry.before_share =
        before.total_ns > 0 ? ns.first / before.total_ns : 0.0;
    entry.after_share = after.total_ns > 0 ? ns.second / after.total_ns : 0.0;
    entry.delta_pp = 100.0 * (entry.after_share - entry.before_share);
    result.max_regression_pp =
        std::max(result.max_regression_pp, entry.delta_pp);
    result.entries.push_back(std::move(entry));
  }
  std::sort(result.entries.begin(), result.entries.end(),
            [](const ProfileDiffEntry& a, const ProfileDiffEntry& b) {
              return a.delta_pp > b.delta_pp;
            });
  return result;
}

// ---------------------------------------------------------------------------
// JANUS_PROFILE env hook
// ---------------------------------------------------------------------------

namespace {

// JANUS_PROFILE=<path>: enable profiling for the whole process and write a
// folded-stacks dump at exit — flamegraph.pl renders it directly. Mirrors
// the JANUS_TRACE hook so any binary can be profiled with no code changes.
struct ProfileEnvInit {
  ProfileEnvInit() {
    const char* path = std::getenv("JANUS_PROFILE");
    if (path == nullptr || path[0] == '\0') return;
    ProfileRegistry::Global();  // the (leaked) registry outlives the handler
    EnableProfiling();
    static std::string output_path;  // atexit handlers take no arguments
    output_path = path;
    std::atexit([] { WriteFoldedStacks(output_path); });
  }
};
const ProfileEnvInit profile_env_init;

}  // namespace

}  // namespace obs
}  // namespace janus
