// Hand-rolled pprof profile.proto encoder (and a minimal decoder for
// tests/CI) — no protobuf or zlib dependency.
//
// The /pprof/profile endpoint serves the continuous profiler's samples in
// the format `go tool pprof` / `pprof -http` consume: a gzipped
// profile.proto where each sample is one plan node and its location stack
// is imperative function -> statement (function:line) -> op, leaf first —
// so standard pprof renders a *source-level* flame graph of the generated
// graph's execution cost.
//
// Encoding is protobuf wire format by hand: varints, length-delimited
// submessages, packed repeated integers. Compression is a gzip container
// around *stored* (uncompressed) deflate blocks — every gzip reader
// accepts it, and it needs no compressor. The decoder half understands
// exactly what the encoder emits (plus raw uncompressed input) and exists
// so tests and trace_validate can round-trip scraped profiles without
// external tooling.
#ifndef JANUS_OBS_PPROF_ENCODE_H_
#define JANUS_OBS_PPROF_ENCODE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/profile.h"

namespace janus {
namespace obs {

// Serializes `samples` as an uncompressed pprof Profile message. Sample
// values are [executions/count, time/nanoseconds]; each sample carries
// string labels unit/variant/level/node.
std::string EncodeProfileProto(const std::vector<ProfileSample>& samples);

// EncodeProfileProto over the live registry (CollectProfileSamples).
std::string SerializeCurrentProfileProto();

// Wraps `raw` in a gzip container using stored deflate blocks (RFC 1951
// BTYPE=00 + RFC 1952 framing, CRC-32 + ISIZE trailer).
std::string GzipCompress(std::string_view raw);

// Inflates a gzip container holding only stored deflate blocks (what
// GzipCompress emits). Verifies CRC-32 and ISIZE. Returns false with a
// message in *error on anything else.
bool GunzipStored(std::string_view data, std::string* out,
                  std::string* error);

struct DecodedPprof {
  struct Sample {
    // Leaf-first frames, rendered "function:line" (line > 0) or
    // "function".
    std::vector<std::string> stack;
    std::vector<std::int64_t> values;
    std::map<std::string, std::string> labels;
  };
  std::vector<std::pair<std::string, std::string>> sample_types;
  std::vector<Sample> samples;
};

// Parses a pprof Profile (gzipped — detected by the 0x1f 0x8b magic — or
// raw). Resolves string/function/location tables into readable frames.
// Returns false with a message in *error on malformed input.
bool DecodePprof(std::string_view data, DecodedPprof* out,
                 std::string* error);

}  // namespace obs
}  // namespace janus

#endif  // JANUS_OBS_PPROF_ENCODE_H_
