// Source-attributed continuous profiler.
//
// JANUS executes a generated symbolic graph in place of the user's
// imperative program, which severs the link between "this line of my
// program" and "this much execution time". This module restores it: every
// ExecutionPlan registers a PlanProfile at build time — one lock-free
// accumulator slot per plan node, plus a copy of each node's imperative
// SourceSite (function, line, statement) — and the executors record
// sampled per-node wall time into those slots. Aggregations key on
// {conversion unit, variant, despecialization level}, so a unit's cost is
// attributable across recompilations of the same source.
//
// Cost model (mirrors trace/ledger):
//  * disabled (default): the per-node hook is one relaxed atomic load and
//    a branch;
//  * enabled: every Nth node execution (jittered stride, thread-local
//    countdown — see internal::NextSampleGap) pays two clock reads and a
//    handful of relaxed atomic adds on the plan's own slot array.
//
// Exports:
//  * /profilez on the introspection HTTP server — human text and
//    ?format=json (top nodes, per-source-line rollup, per-unit
//    generation/validation/execution split);
//  * /pprof/profile — gzipped pprof profile.proto whose sample stacks are
//    imperative function -> statement -> op (see obs/pprof_encode.h);
//  * JANUS_PROFILE=<path> — folded-stacks dump at process exit, directly
//    consumable by flamegraph.pl;
//  * tools/janus_profdiff — per-source-site regression diff of two folded
//    dumps (ParseFoldedProfile / DiffProfilesBySite below).
#ifndef JANUS_OBS_PROFILE_H_
#define JANUS_OBS_PROFILE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"

namespace janus {
namespace obs {

// Mirror of graph::SourceSite, copied at plan build so obs/ never links
// against the graph layer.
struct ProfileSite {
  std::string function;
  int line = 0;
  int stmt = -1;

  bool known() const { return !function.empty() || line > 0; }
  std::string Label() const;
};

// Static metadata for one plan node, captured at plan build. For a fused
// region, `members` carries the constituent nodes (execution time recorded
// against the region is split across them at export).
struct ProfileNodeInfo {
  std::string name;  // graph node name (unique within the graph)
  std::string op;
  ProfileSite site;
  std::vector<ProfileNodeInfo> members;  // non-empty iff fused region
};

// Per-plan cost accumulator: one cache-line-padded-free slot per plan node
// (count / total ns / max ns / log2 histogram), all updated with relaxed
// atomics — concurrent recorders only race benignly on max. Sized once at
// construction; never reallocated, so executors can record without
// synchronization while an HTTP scrape snapshots concurrently.
class PlanProfile {
 public:
  static constexpr int kNumBuckets = 32;

  explicit PlanProfile(std::vector<ProfileNodeInfo> nodes);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const std::vector<ProfileNodeInfo>& nodes() const { return nodes_; }

  // Hot path: adds one sampled execution of `index` taking `dur_ns`.
  void Record(int index, std::int64_t dur_ns);

  // Aggregation key: {conversion unit, variant, despecialization level}.
  // Set once by the engine right after compilation; plans built outside an
  // engine keep the defaults ("", "", 0).
  void SetKey(std::string unit, std::string variant, int level);
  const std::string& unit() const { return unit_; }
  const std::string& variant() const { return variant_; }
  int despecialization_level() const { return level_; }

  // Inclusive phase accounting for the unit this plan executes.
  void SetGenerationNs(std::int64_t ns) {
    generation_ns_.store(ns, std::memory_order_relaxed);
  }
  void AddValidationNs(std::int64_t ns) {
    validation_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  void AddRun() { runs_.fetch_add(1, std::memory_order_relaxed); }
  std::int64_t generation_ns() const {
    return generation_ns_.load(std::memory_order_relaxed);
  }
  std::int64_t validation_ns() const {
    return validation_ns_.load(std::memory_order_relaxed);
  }
  std::uint64_t runs() const { return runs_.load(std::memory_order_relaxed); }

  struct NodeSnapshot {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
    std::uint64_t buckets[kNumBuckets] = {};
  };
  NodeSnapshot Snapshot(int index) const;

 private:
  struct Slot {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> total_ns{0};
    std::atomic<std::uint64_t> max_ns{0};
    std::atomic<std::uint64_t> buckets[kNumBuckets] = {};
  };

  std::vector<ProfileNodeInfo> nodes_;
  std::unique_ptr<Slot[]> slots_;
  std::string unit_;
  std::string variant_;
  int level_ = 0;
  std::atomic<std::int64_t> generation_ns_{0};
  std::atomic<std::int64_t> validation_ns_{0};
  std::atomic<std::uint64_t> runs_{0};
};

// Process-global set of live PlanProfiles. Plans register at build and
// stay until process exit (plans are shared_ptr-owned by caches; the
// registry holds weak-free shared_ptrs so a scrape racing plan eviction
// still reads valid slots). Bounded: past kMaxProfiles the oldest
// registration is dropped (dropped_ counts them) — continuous profiling
// must not grow without bound under cache churn.
class ProfileRegistry {
 public:
  static constexpr std::size_t kMaxProfiles = 512;

  static ProfileRegistry& Global();

  void Register(std::shared_ptr<PlanProfile> profile);
  std::vector<std::shared_ptr<PlanProfile>> Profiles() const;
  std::uint64_t dropped() const;

  // Drops all registrations (tests).
  void Reset();

 private:
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<PlanProfile>> profiles_;
  std::uint64_t dropped_ = 0;
};

// ---------------------------------------------------------------------------
// Enable flag + sampling
// ---------------------------------------------------------------------------

namespace internal {
extern std::atomic<bool> profiling_active;
extern thread_local std::uint32_t profile_sample_countdown;
}  // namespace internal

// Nominal sampling stride: ~1 in 64 node executions is timed while
// profiling is enabled. Exports scale counts/times back up by this factor.
// 64 keeps the enabled overhead on a chain of ~40ns ops under ~5%
// (BM_ProfileOverhead); long-running workloads still collect thousands of
// samples per second per thread.
inline constexpr std::uint32_t kProfileSampleEvery = 64;

void EnableProfiling();
void DisableProfiling();

inline bool ProfilingEnabled() {
  return internal::profiling_active.load(std::memory_order_relaxed);
}

// Executors call this once per plan-node execution. Disabled cost: the
// relaxed load above and a branch. The countdown is thread-local and the
// reload jittered (internal::NextSampleGap) so a fixed-length plan cannot
// alias with the stride and pin sampling onto one node.
inline bool ShouldSampleProfileNode() {
  if (!ProfilingEnabled()) return false;
  if (internal::profile_sample_countdown == 0) {
    internal::profile_sample_countdown =
        internal::NextSampleGap(kProfileSampleEvery) - 1;
    return true;
  }
  --internal::profile_sample_countdown;
  return false;
}

// ---------------------------------------------------------------------------
// Snapshots + renderers
// ---------------------------------------------------------------------------

// One exported sample: a plan node (or fused-region member, with the
// region's time split evenly across members) under its aggregation key.
// count/total_ns/max_ns are scaled by the nominal sampling stride, i.e.
// they estimate true totals.
struct ProfileSample {
  std::string unit;
  std::string variant;
  int level = 0;
  std::string function;
  int line = 0;
  int stmt = -1;
  std::string op;
  std::string node;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;
};

struct ProfileUnitTotals {
  std::string unit;
  std::string variant;
  int level = 0;
  std::int64_t generation_ns = 0;
  std::int64_t validation_ns = 0;
  std::uint64_t execution_ns = 0;  // sampled-and-scaled node time
  std::uint64_t runs = 0;
};

std::vector<ProfileSample> CollectProfileSamples();
std::vector<ProfileUnitTotals> CollectProfileUnitTotals();

// Mean per-execution ns per graph node name, aggregated across all
// registered plans (fused members get their split share). Used by the DOT
// exporter's heat coloring; node names may collide across units — callers
// get the blended mean, which is the best available without a unit hint.
std::map<std::string, double> ProfileNodeMeanNs();

// /profilez renderers.
std::string RenderProfileText();
std::string RenderProfileJson();

// Folded-stacks dump: one line per sample,
//   "unit;function;function:line;op <total_ns>"
// — flamegraph.pl consumes this directly.
std::string RenderFoldedStacks();
void WriteFoldedStacks(const std::string& path);

// ---------------------------------------------------------------------------
// Folded-profile parsing + diffing (janus_profdiff)
// ---------------------------------------------------------------------------

struct FoldedProfile {
  // Full stack ("a;b;c") -> summed value.
  std::map<std::string, double> stack_ns;
  double total_ns = 0;
};

// Parses a folded-stacks dump (blank lines ignored). Returns false with a
// line-annotated *error on malformed input (no value, non-numeric value).
bool ParseFoldedProfile(std::string_view text, FoldedProfile* out,
                        std::string* error);

struct ProfileDiffEntry {
  std::string site;       // stack minus the leaf op frame
  double before_ns = 0;
  double after_ns = 0;
  double before_share = 0;  // fraction of its profile's total
  double after_share = 0;
  double delta_pp = 0;      // (after - before) share, percentage points
};

struct ProfileDiffResult {
  std::vector<ProfileDiffEntry> entries;  // sorted by delta_pp descending
  double max_regression_pp = 0;
};

// Diffs two folded profiles per source site (all frames except the leaf
// op), comparing each site's share of its own profile's total — so two
// dumps of different lengths compare meaningfully.
ProfileDiffResult DiffProfilesBySite(const FoldedProfile& before,
                                     const FoldedProfile& after);

}  // namespace obs
}  // namespace janus

#endif  // JANUS_OBS_PROFILE_H_
