// Low-overhead span tracer for the JANUS decision loop.
//
// The engine's value proposition is a runtime loop — profile imperatively,
// speculatively generate a graph, guard it with assertions, fall back on
// failure (Fig. 2) — and this tracer makes that loop visible: every phase
// and (sampled) kernel records a TraceEvent into a thread-local ring
// buffer, and the whole process timeline exports as a single
// chrome://tracing / Perfetto-compatible JSON file.
//
// Cost model:
//  * disabled (the default): recording sites reduce to one relaxed atomic
//    load and a branch — cheap enough for per-op code paths (the
//    micro_overheads benchmark holds the disabled path to <5% of per-op
//    cost);
//  * enabled: a clock read plus a short critical section on the calling
//    thread's own ring buffer (uncontended except against a concurrent
//    Collect()).
//
// Toggles: Trace::Enable()/Disable() programmatically,
// EngineOptions::trace_path per engine, or the JANUS_TRACE=<path>
// environment variable, which enables tracing at process start and writes
// the Chrome-trace file at exit — so any example or benchmark binary can be
// traced with no code changes.
#ifndef JANUS_OBS_TRACE_H_
#define JANUS_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace janus {
namespace obs {

// One recorded event. `phase` follows the Chrome trace-event format: 'X'
// is a complete (duration) event, 'i' an instant marker.
struct TraceEvent {
  std::string name;
  const char* category = "";
  char phase = 'X';
  std::int64_t start_ns = 0;  // relative to the process trace epoch
  std::int64_t dur_ns = 0;    // 'X' only
  std::uint32_t tid = 0;      // tracer-assigned dense thread id
  // Optional arguments, rendered into the Chrome "args" object.
  const char* arg_key = nullptr;  // static key for an integer arg
  std::int64_t arg_value = 0;
  std::string detail;  // rendered under "detail" when non-empty
};

class Trace {
 public:
  static bool Enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  static void Enable();
  static void Disable();

  // Monotonic nanoseconds since the process trace epoch.
  static std::int64_t NowNs();

  static void RecordComplete(std::string name, const char* category,
                             std::int64_t start_ns, std::int64_t dur_ns,
                             const char* arg_key = nullptr,
                             std::int64_t arg_value = 0,
                             std::string detail = {});
  static void RecordInstant(std::string name, const char* category,
                            std::string detail = {});

  // Snapshot of every thread's ring buffer, sorted by start time. Dropped
  // (overwritten) events are not recoverable; see TotalDropped().
  static std::vector<TraceEvent> Collect();

  // Clears all buffers and the recorded/dropped totals.
  static void Reset();

  static std::int64_t TotalRecorded();
  static std::int64_t TotalDropped();

  // Chrome trace-event JSON ({"traceEvents": [...]}) of Collect().
  static std::string ToChromeJson();
  static void WriteChromeTrace(const std::string& path);

  // Ring capacity (events per thread) applied to buffers of threads that
  // record their first event after the call. Default 32768.
  static void SetBufferCapacityForTesting(std::size_t events);

 private:
  static std::atomic<bool> enabled_;
};

// True when at least one consumer of sampled per-op kernel timing is
// active (the tracer, or metrics-only kernel timing enabled via
// SetKernelTimingEnabled / EngineOptions::kernel_timing).
inline bool KernelSamplingActive();
void SetKernelTimingEnabled(bool enabled);
bool KernelTimingEnabled();

namespace internal {
// Single flag combining Trace::Enabled() and KernelTimingEnabled(), kept
// in sync by the toggles so hot paths test one atomic.
extern std::atomic<bool> kernel_sampling_active;
extern thread_local std::uint32_t kernel_sample_countdown;
// Next countdown reload for a sampler with the given nominal stride:
// uniform in [nominal/2, 3*nominal/2) from a per-thread xorshift PRNG
// (mean = nominal). A deterministic every-Nth stride aliases with
// fixed-length plans — a 16-op chain under a 16-stride sampler times the
// same node forever — so both the kernel and the plan-node profilers
// draw jittered gaps instead. Only the enable flag is process-global;
// all countdown state is thread-local (no cross-thread contention).
std::uint32_t NextSampleGap(std::uint32_t nominal);
}  // namespace internal

// Executors call this per kernel: returns true on the first and then every
// kSampleEvery'th kernel of the calling thread while sampling is active.
// Sampled kernels get timed into the metrics registry (histogram
// "kernel.<op>") and, when tracing is on, recorded as a trace event.
inline constexpr std::uint32_t kKernelSampleEvery = 16;

inline bool KernelSamplingActive() {
  return internal::kernel_sampling_active.load(std::memory_order_relaxed);
}

inline bool ShouldSampleKernel() {
  if (!KernelSamplingActive()) return false;
  if (internal::kernel_sample_countdown == 0) {
    internal::kernel_sample_countdown =
        internal::NextSampleGap(kKernelSampleEvery) - 1;
    return true;
  }
  --internal::kernel_sample_countdown;
  return false;
}

// Records one sampled kernel execution: histogram "kernel.<op>" in the
// global metrics registry plus, if tracing is enabled, a complete event
// under `category` ("kernel" for graph executors, "eager" for per-op
// dispatch).
void RecordKernelSample(const std::string& op, const char* category,
                        std::int64_t start_ns, std::int64_t dur_ns);

// RAII span. Construction with a `const char*` name does no work when
// tracing is disabled; the std::string overload is for dynamic names on
// paths that already checked Trace::Enabled().
class TraceScope {
 public:
  TraceScope(const char* name, const char* category)
      : armed_(Trace::Enabled()), category_(category) {
    if (armed_) {
      name_ = name;
      start_ns_ = Trace::NowNs();
    }
  }
  TraceScope(std::string name, const char* category)
      : armed_(Trace::Enabled()), category_(category) {
    if (armed_) {
      name_ = std::move(name);
      start_ns_ = Trace::NowNs();
    }
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  void set_arg(const char* key, std::int64_t value) {
    arg_key_ = key;
    arg_value_ = value;
  }
  void set_detail(std::string detail) {
    if (armed_) detail_ = std::move(detail);
  }

  ~TraceScope() {
    if (armed_) {
      Trace::RecordComplete(std::move(name_), category_, start_ns_,
                            Trace::NowNs() - start_ns_, arg_key_, arg_value_,
                            std::move(detail_));
    }
  }

 private:
  bool armed_;
  const char* category_;
  std::string name_;
  std::string detail_;
  std::int64_t start_ns_ = 0;
  const char* arg_key_ = nullptr;
  std::int64_t arg_value_ = 0;
};

}  // namespace obs
}  // namespace janus

#endif  // JANUS_OBS_TRACE_H_
