#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>

#include "common/logging.h"
#include "obs/metrics.h"

namespace janus {
namespace obs {
namespace {

constexpr std::size_t kDefaultRingCapacity = 32768;

std::atomic<std::size_t> g_ring_capacity{kDefaultRingCapacity};

std::int64_t SteadyNowRaw() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::int64_t TraceEpoch() {
  static const std::int64_t epoch = SteadyNowRaw();
  return epoch;
}

// Per-thread ring buffer. The owning thread appends under `mu` (uncontended
// except against a concurrent Collect/Reset); the registry keeps a
// shared_ptr so buffers survive thread exit and remain exportable.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> ring;
  std::size_t capacity = kDefaultRingCapacity;
  std::size_t next = 0;        // write cursor (mod capacity once full)
  std::int64_t recorded = 0;   // total events ever recorded
  std::uint32_t tid = 0;

  void Append(TraceEvent event) {
    const std::lock_guard<std::mutex> lock(mu);
    event.tid = tid;
    if (ring.size() < capacity) {
      ring.push_back(std::move(event));
    } else {
      ring[next % capacity] = std::move(event);
    }
    ++next;
    ++recorded;
  }
};

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::uint32_t next_tid = 1;
};

// Leaked intentionally: thread-local destructors and the JANUS_TRACE
// atexit exporter may run during process teardown and must always find a
// live registry.
Registry& GlobalRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto fresh = std::make_shared<ThreadBuffer>();
    fresh->capacity =
        std::max<std::size_t>(1, g_ring_capacity.load(std::memory_order_relaxed));
    Registry& registry = GlobalRegistry();
    const std::lock_guard<std::mutex> lock(registry.mu);
    fresh->tid = registry.next_tid++;
    registry.buffers.push_back(fresh);
    return fresh;
  }();
  return *buffer;
}

void JsonEscape(std::ostringstream& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\r':
        out << "\\r";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << hex;
        } else {
          out << c;
        }
    }
  }
}

// Nanosecond count rendered as microseconds with fractional digits, the
// unit Chrome's "ts"/"dur" fields expect.
void EmitMicros(std::ostringstream& out, std::int64_t ns) {
  if (ns < 0) ns = 0;
  char text[32];
  std::snprintf(text, sizeof(text), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  out << text;
}

void RefreshSamplingFlag();

}  // namespace

std::atomic<bool> Trace::enabled_{false};

namespace internal {
std::atomic<bool> kernel_sampling_active{false};
thread_local std::uint32_t kernel_sample_countdown = 0;

std::uint32_t NextSampleGap(std::uint32_t nominal) {
  // Per-thread xorshift32, seeded from the thread-local's address so
  // threads decorrelate without any shared state.
  thread_local std::uint32_t state = [] {
    const auto seed = static_cast<std::uint32_t>(
        reinterpret_cast<std::uintptr_t>(&kernel_sample_countdown) >> 4);
    return seed | 1u;  // xorshift must not start at 0
  }();
  state ^= state << 13;
  state ^= state >> 17;
  state ^= state << 5;
  if (nominal <= 1) return 1;
  // Uniform in [nominal/2, 3*nominal/2): mean = nominal, never 0.
  const std::uint32_t half = nominal / 2;
  return half + state % nominal + (half == 0 ? 1 : 0);
}
}  // namespace internal

namespace {
std::atomic<bool> g_kernel_timing_enabled{false};

void RefreshSamplingFlag() {
  internal::kernel_sampling_active.store(
      Trace::Enabled() || g_kernel_timing_enabled.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
}
}  // namespace

void Trace::Enable() {
  TraceEpoch();  // pin the epoch before the first event
  enabled_.store(true, std::memory_order_relaxed);
  RefreshSamplingFlag();
}

void Trace::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
  RefreshSamplingFlag();
}

void SetKernelTimingEnabled(bool enabled) {
  g_kernel_timing_enabled.store(enabled, std::memory_order_relaxed);
  RefreshSamplingFlag();
}

bool KernelTimingEnabled() {
  return g_kernel_timing_enabled.load(std::memory_order_relaxed);
}

std::int64_t Trace::NowNs() { return SteadyNowRaw() - TraceEpoch(); }

void Trace::RecordComplete(std::string name, const char* category,
                           std::int64_t start_ns, std::int64_t dur_ns,
                           const char* arg_key, std::int64_t arg_value,
                           std::string detail) {
  if (!Enabled()) return;
  TraceEvent event;
  event.name = std::move(name);
  event.category = category;
  event.phase = 'X';
  event.start_ns = start_ns;
  event.dur_ns = dur_ns;
  event.arg_key = arg_key;
  event.arg_value = arg_value;
  event.detail = std::move(detail);
  LocalBuffer().Append(std::move(event));
}

void Trace::RecordInstant(std::string name, const char* category,
                          std::string detail) {
  if (!Enabled()) return;
  TraceEvent event;
  event.name = std::move(name);
  event.category = category;
  event.phase = 'i';
  event.start_ns = NowNs();
  event.detail = std::move(detail);
  LocalBuffer().Append(std::move(event));
}

std::vector<TraceEvent> Trace::Collect() {
  std::vector<TraceEvent> events;
  Registry& registry = GlobalRegistry();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    const std::lock_guard<std::mutex> lock(registry.mu);
    buffers = registry.buffers;
  }
  for (const auto& buffer : buffers) {
    const std::lock_guard<std::mutex> lock(buffer->mu);
    if (buffer->ring.size() < buffer->capacity) {
      events.insert(events.end(), buffer->ring.begin(), buffer->ring.end());
    } else {
      // Full ring: oldest surviving event sits at the write cursor.
      const std::size_t cursor = buffer->next % buffer->capacity;
      events.insert(events.end(), buffer->ring.begin() + cursor,
                    buffer->ring.end());
      events.insert(events.end(), buffer->ring.begin(),
                    buffer->ring.begin() + cursor);
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_ns < b.start_ns;
                   });
  return events;
}

void Trace::Reset() {
  Registry& registry = GlobalRegistry();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    const std::lock_guard<std::mutex> lock(registry.mu);
    buffers = registry.buffers;
  }
  for (const auto& buffer : buffers) {
    const std::lock_guard<std::mutex> lock(buffer->mu);
    buffer->ring.clear();
    buffer->next = 0;
    buffer->recorded = 0;
  }
}

std::int64_t Trace::TotalRecorded() {
  std::int64_t total = 0;
  Registry& registry = GlobalRegistry();
  const std::lock_guard<std::mutex> lock(registry.mu);
  for (const auto& buffer : registry.buffers) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    total += buffer->recorded;
  }
  return total;
}

std::int64_t Trace::TotalDropped() {
  std::int64_t dropped = 0;
  Registry& registry = GlobalRegistry();
  const std::lock_guard<std::mutex> lock(registry.mu);
  for (const auto& buffer : registry.buffers) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    dropped += buffer->recorded -
               static_cast<std::int64_t>(buffer->ring.size());
  }
  return dropped;
}

void Trace::SetBufferCapacityForTesting(std::size_t events) {
  g_ring_capacity.store(events == 0 ? kDefaultRingCapacity : events,
                        std::memory_order_relaxed);
}

std::string Trace::ToChromeJson() {
  const std::vector<TraceEvent> events = Collect();
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"";
    JsonEscape(out, event.name);
    out << "\",\"cat\":\"";
    JsonEscape(out, event.category);
    out << "\",\"ph\":\"" << event.phase << "\",\"pid\":1,\"tid\":"
        << event.tid << ",\"ts\":";
    EmitMicros(out, event.start_ns);
    if (event.phase == 'X') {
      out << ",\"dur\":";
      EmitMicros(out, event.dur_ns);
    } else {
      out << ",\"s\":\"t\"";  // instant scope: thread
    }
    if (event.arg_key != nullptr || !event.detail.empty()) {
      out << ",\"args\":{";
      bool first_arg = true;
      if (event.arg_key != nullptr) {
        out << "\"";
        JsonEscape(out, event.arg_key);
        out << "\":" << event.arg_value;
        first_arg = false;
      }
      if (!event.detail.empty()) {
        if (!first_arg) out << ",";
        out << "\"detail\":\"";
        JsonEscape(out, event.detail);
        out << "\"";
      }
      out << "}";
    }
    out << "}";
  }
  out << "],\"displayTimeUnit\":\"ns\"}";
  return out.str();
}

void Trace::WriteChromeTrace(const std::string& path) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    JANUS_LOG(kError) << "cannot open trace output file '" << path << "'";
    return;
  }
  file << ToChromeJson() << "\n";
}

void RecordKernelSample(const std::string& op, const char* category,
                        std::int64_t start_ns, std::int64_t dur_ns) {
  MetricsRegistry::Global().GetHistogram("kernel." + op).Record(dur_ns);
  if (Trace::Enabled()) {
    Trace::RecordComplete(op, category, start_ns, dur_ns, "sampled", 1);
  }
}

namespace {

// JANUS_TRACE=<path>: enable tracing for the whole process and write the
// Chrome trace at exit. Runs at static-initialization time so example and
// benchmark binaries need no code changes.
struct TraceEnvInit {
  TraceEnvInit() {
    const char* path = std::getenv("JANUS_TRACE");
    if (path == nullptr || path[0] == '\0') return;
    GlobalRegistry();  // ensure the (leaked) registry outlives the handler
    Trace::Enable();
    static std::string output_path;  // atexit handlers take no arguments
    output_path = path;
    std::atexit([] { Trace::WriteChromeTrace(output_path); });
  }
};
const TraceEnvInit trace_env_init;

}  // namespace
}  // namespace obs
}  // namespace janus
