// Live introspection: an embedded HTTP server plus the introspection hub
// it serves from.
//
// The hub is the aggregation point between producers with bounded
// lifetimes (engines come and go) and consumers with unbounded ones (a
// Prometheus scraper, a human with curl). Engines register their private
// MetricsRegistry and a status-text provider; when an engine is destroyed
// it unregisters, and the hub *retires* the source — folds the final
// counter/histogram values into persistent accumulators and keeps the
// final status text — so a scrape that races engine teardown (or arrives
// during the JANUS_HTTP_LINGER_MS window after main returns) still sees
// the totals instead of an empty page.
//
// Endpoints (all text/plain, loopback only):
//   /metrics       Prometheus text exposition 0.0.4: every counter and
//                  histogram from the global registry, live registered
//                  registries, and retired sources, merged by name.
//                  kernel.<op> histograms collapse into one family,
//                  janus_kernel_ns{op="<op>"}.
//   /statusz       concatenated status text from every registered (and
//                  retired) provider — Engine::StatsReport() per engine.
//   /flightz       the most recent speculation-ledger records as JSONL.
//   /healthz       "ok" liveness probe.
//   /quitquitquit  sets the quit flag polled by the linger loop, so CI
//                  can scrape a short-lived process and then release it
//                  for a clean exit (atexit dumps still run).
//
// Env: JANUS_HTTP_PORT=<port> starts the server at static-init time;
// JANUS_HTTP_LINGER_MS=<ms> keeps the process alive after main returns
// for at most that long (or until /quitquitquit), giving scrapers a
// window to collect final metrics from batch binaries.
#ifndef JANUS_OBS_HTTP_EXPORT_H_
#define JANUS_OBS_HTTP_EXPORT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace janus {
namespace obs {

// Point-in-time copy of one histogram, in the same log2 bucket geometry
// as obs::Histogram. Used both for retiring sources and for merging live
// ones into a single exposition.
struct HistogramSnapshot {
  std::int64_t buckets[Histogram::kNumBuckets] = {};
  std::int64_t count = 0;
  std::int64_t sum = 0;

  void Accumulate(const Histogram& histogram);
  void Accumulate(const HistogramSnapshot& other);
};

// Aggregates metrics and status text across every live and retired
// producer. All methods are thread-safe. Status providers are invoked
// while the hub holds its reader lock, so UnregisterStatusSource (which
// takes the lock exclusively) cannot return while a provider call is in
// flight — after it returns, the provider's captured state is safe to
// destroy. Providers must therefore never call back into the hub.
class IntrospectionHub {
 public:
  static IntrospectionHub& Global();

  // Metrics sources. The global MetricsRegistry is always included and
  // never needs registering. Unregister folds the source's current values
  // into the retired accumulators before dropping the pointer.
  void RegisterMetricsSource(const MetricsRegistry* registry);
  void UnregisterMetricsSource(const MetricsRegistry* registry);

  // Status sources (named, ordered by registration). Unregister captures
  // the provider's final text under a "[retired]" marker.
  int RegisterStatusSource(std::string name,
                           std::function<std::string()> provider);
  void UnregisterStatusSource(int id);

  // Merged views: counters summed by name; histograms bucket-summed by
  // name. Always includes MetricsRegistry::Global() plus live and retired
  // registered sources.
  std::map<std::string, std::int64_t> MergedCounters() const;
  std::map<std::string, HistogramSnapshot> MergedHistograms() const;

  // Every provider's text in registration order, retired sources last.
  std::string StatusText() const;

  void ResetForTesting();

 private:
  struct StatusSource {
    int id = 0;
    std::string name;
    std::function<std::string()> provider;
  };

  void FoldRegistryLocked(const MetricsRegistry& registry) REQUIRES(mu_);

  mutable SharedMutex mu_;
  std::vector<const MetricsRegistry*> registries_ GUARDED_BY(mu_);
  std::vector<StatusSource> status_sources_ GUARDED_BY(mu_);
  int next_status_id_ GUARDED_BY(mu_) = 1;
  std::map<std::string, std::int64_t> retired_counters_ GUARDED_BY(mu_);
  std::map<std::string, HistogramSnapshot> retired_histograms_
      GUARDED_BY(mu_);
  std::vector<std::string> retired_status_ GUARDED_BY(mu_);
};

// Prometheus text exposition 0.0.4 helpers, exposed for tests.
//
// Sanitizes a registry metric name into a Prometheus metric name:
// prefixes "janus_", maps every character outside [a-zA-Z0-9_:] to '_'.
std::string PrometheusMetricName(std::string_view name);
// Escapes a label value: backslash, double quote, and newline.
std::string PrometheusEscapeLabelValue(std::string_view value);
// Renders the full exposition from the hub's merged view.
std::string RenderPrometheusText();

// One parsed-and-routed HTTP exchange, exposed for tests.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class HttpExportServer {
 public:
  static HttpExportServer& Global();

  ~HttpExportServer();

  // Binds 127.0.0.1:<port> (0 picks a free port) and starts the accept
  // thread. Returns false (with a log line) when the bind fails; a second
  // Start while running is a no-op returning true.
  bool Start(int port);
  void Stop();
  bool running() const { return running_.load(std::memory_order_acquire); }
  int port() const { return port_; }

  // Pure routing: maps a request path (query string allowed) to the
  // response the socket layer would serve. Static so tests can exercise
  // every endpoint without sockets.
  static HttpResponse HandlePath(std::string_view path);

  // True once /quitquitquit has been hit (or RequestQuit called); the
  // JANUS_HTTP_LINGER_MS loop polls this to release the process early.
  static bool QuitRequested();
  static void RequestQuit();

 private:
  HttpExportServer() = default;
  void AcceptLoop();
  void ServeConnection(int fd);

  std::atomic<bool> running_{false};
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::thread accept_thread_;
};

}  // namespace obs
}  // namespace janus

#endif  // JANUS_OBS_HTTP_EXPORT_H_
