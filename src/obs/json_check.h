// Minimal JSON parser used to validate emitted Chrome-trace files.
//
// This is deliberately not a general JSON library: it fully validates
// syntax (objects, arrays, strings with escapes, numbers, literals) and
// extracts only what trace validation needs — per-event name / cat / ph
// and the event count. Tests and the `trace_validate` CI tool both parse
// exporter output back through this to guard the JSON schema.
#ifndef JANUS_OBS_JSON_CHECK_H_
#define JANUS_OBS_JSON_CHECK_H_

#include <set>
#include <string>
#include <string_view>

namespace janus {
namespace obs {

struct ChromeTraceSummary {
  int num_events = 0;
  std::set<std::string> names;
  std::set<std::string> categories;
  std::set<std::string> phases;
};

// Parses `json` as a Chrome trace ({"traceEvents": [...]}). Returns false
// (with a position-annotated message in *error) on any syntax error, a
// missing "traceEvents" array, or an event missing name/cat/ph string
// fields. On success fills *summary when non-null.
bool ValidateChromeTrace(std::string_view json, std::string* error,
                         ChromeTraceSummary* summary = nullptr);

}  // namespace obs
}  // namespace janus

#endif  // JANUS_OBS_JSON_CHECK_H_
