// Minimal parsers used to validate the observability subsystem's emitted
// text formats: Chrome-trace JSON, speculation-ledger JSONL, and the
// Prometheus text exposition served on /metrics.
//
// These are deliberately not general libraries: they fully validate
// syntax and extract only what validation needs. Tests and the
// `trace_validate` CI tool both parse exporter output back through this
// module to guard each schema.
#ifndef JANUS_OBS_JSON_CHECK_H_
#define JANUS_OBS_JSON_CHECK_H_

#include <map>
#include <set>
#include <string>
#include <string_view>

namespace janus {
namespace obs {

struct ChromeTraceSummary {
  int num_events = 0;
  std::set<std::string> names;
  std::set<std::string> categories;
  std::set<std::string> phases;
};

// Parses `json` as a Chrome trace ({"traceEvents": [...]}). Returns false
// (with a position-annotated message in *error) on any syntax error, a
// missing "traceEvents" array, or an event missing name/cat/ph string
// fields. On success fills *summary when non-null.
bool ValidateChromeTrace(std::string_view json, std::string* error,
                         ChromeTraceSummary* summary = nullptr);

// One top-level value of a flat JSON object. Strings are decoded
// (escapes resolved); numbers and literals keep their raw source text.
struct FlatValue {
  enum class Kind { kString, kNumber, kBool, kNull };
  Kind kind = Kind::kString;
  std::string text;
};
using FlatObject = std::map<std::string, FlatValue>;

// Parses one line as a flat JSON object — the shape every ledger JSONL
// record has. Nested objects and arrays are rejected. Returns false with
// a position-annotated *error on malformed input.
bool ParseFlatJsonObject(std::string_view line, FlatObject* fields,
                         std::string* error);

// Validates one speculation-ledger JSONL line (obs/ledger.h schema): a
// flat object with numeric "seq" and "ts_ns" and a non-empty string
// "kind"; the attribution fields (unit/name/assumption/assumed/observed/
// detail) must be strings and the latency/volume fields numeric when
// present. Fills *fields when non-null.
bool ValidateLedgerLine(std::string_view line, FlatObject* fields,
                        std::string* error);

struct ProfileJsonSummary {
  bool enabled = false;
  int sample_stride = 0;
  int num_units = 0;
  int num_lines = 0;   // per-source-line rollup entries across all units
  int num_nodes = 0;   // top_nodes entries across all units
  std::set<std::string> units;
};

// Validates the /profilez?format=json document (obs/profile.h schema): a
// top-level object with boolean "enabled", numeric "sample_stride", and a
// "units" array whose entries carry string unit/variant, numeric
// level/runs/generation_ns/validation_ns/execution_ns, a "lines" array
// ({function, line, execution_ns, count}), and a "top_nodes" array
// ({node, op, function, line, count, total_ns, max_ns}). On success fills
// *summary when non-null.
bool ValidateProfileJson(std::string_view json, std::string* error,
                         ProfileJsonSummary* summary = nullptr);

struct PrometheusSummary {
  int num_samples = 0;
  // Family names declared by "# TYPE" lines, and the (possibly suffixed)
  // names that actually appeared on sample lines.
  std::set<std::string> families;
  std::set<std::string> sample_names;
};

// Validates a Prometheus text-format 0.0.4 exposition: every line must be
// a comment ("# HELP" / "# TYPE" with a well-formed name and type) or a
// sample `name{labels} value` whose metric name, label names, label-value
// escapes, and value all conform. Sample values must be finite (NaN/±Inf
// indicate a broken exporter; the `le="+Inf"` histogram-bucket LABEL is
// unaffected), and each series — name plus label set, order-insensitive —
// may appear at most once per exposition. On success fills *summary when
// non-null.
bool ValidatePrometheusText(std::string_view text, std::string* error,
                            PrometheusSummary* summary = nullptr);

}  // namespace obs
}  // namespace janus

#endif  // JANUS_OBS_JSON_CHECK_H_
