#include "obs/json_check.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>

namespace janus {
namespace obs {
namespace {

// Recursive-descent JSON parser. Values are discarded except for strings,
// which are returned so object walkers can read the fields they care
// about. Throws ParseError (internal) on malformed input.
class Parser {
 public:
  struct ParseError {
    std::size_t position;
    std::string message;
  };

  explicit Parser(std::string_view text) : text_(text) {}

  // Parses one complete JSON value and requires end-of-input after it.
  void ParseDocument(ChromeTraceSummary* summary) {
    SkipWhitespace();
    ParseTopLevel(summary);
    SkipWhitespace();
    if (pos_ != text_.size()) Fail("trailing content after JSON document");
  }

  // Parses one flat JSON object (no nested objects/arrays), capturing
  // every top-level field, and requires end-of-input after it.
  void ParseFlatDocument(FlatObject* fields) {
    SkipWhitespace();
    Expect('{');
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
    } else {
      while (true) {
        SkipWhitespace();
        const std::string key = ParseString();
        SkipWhitespace();
        Expect(':');
        SkipWhitespace();
        FlatValue value;
        switch (Peek()) {
          case '{':
          case '[':
            Fail("nested value in flat object");
          case '"':
            value.kind = FlatValue::Kind::kString;
            value.text = ParseString();
            break;
          case 't':
            ParseLiteral("true");
            value.kind = FlatValue::Kind::kBool;
            value.text = "true";
            break;
          case 'f':
            ParseLiteral("false");
            value.kind = FlatValue::Kind::kBool;
            value.text = "false";
            break;
          case 'n':
            ParseLiteral("null");
            value.kind = FlatValue::Kind::kNull;
            value.text = "null";
            break;
          default: {
            const std::size_t start = pos_;
            ParseNumber();
            value.kind = FlatValue::Kind::kNumber;
            value.text = std::string(text_.substr(start, pos_ - start));
          }
        }
        if (fields != nullptr) (*fields)[key] = std::move(value);
        SkipWhitespace();
        const char c = Next();
        if (c == '}') break;
        if (c != ',') {
          --pos_;
          Fail("expected ',' or '}' in object");
        }
      }
    }
    SkipWhitespace();
    if (pos_ != text_.size()) Fail("trailing content after JSON object");
  }

 private:
  [[noreturn]] void Fail(const std::string& message) const {
    throw ParseError{pos_, message};
  }

  char Peek() const {
    if (pos_ >= text_.size()) Fail("unexpected end of input");
    return text_[pos_];
  }

  char Next() {
    const char c = Peek();
    ++pos_;
    return c;
  }

  void Expect(char c) {
    if (Next() != c) {
      --pos_;
      Fail(std::string("expected '") + c + "'");
    }
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      const char c = Next();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char escape = Next();
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = Next();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              Fail("bad \\u escape");
            }
          }
          // Validation only: non-ASCII code points are replaced, not
          // round-tripped.
          out.push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default:
          Fail("bad escape character");
      }
    }
  }

  void ParseNumber() {
    if (Peek() == '-') ++pos_;
    if (std::isdigit(static_cast<unsigned char>(Peek())) == 0) {
      Fail("bad number");
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (std::isdigit(static_cast<unsigned char>(Peek())) == 0) {
        Fail("bad number: no digits after decimal point");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (std::isdigit(static_cast<unsigned char>(Peek())) == 0) {
        Fail("bad number: no exponent digits");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
  }

  void ParseLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      Fail("bad literal");
    }
    pos_ += literal.size();
  }

  // Generic value: validated and discarded.
  void ParseValue() {
    SkipWhitespace();
    switch (Peek()) {
      case '{': ParseObject(nullptr); break;
      case '[': ParseArray(); break;
      case '"': ParseString(); break;
      case 't': ParseLiteral("true"); break;
      case 'f': ParseLiteral("false"); break;
      case 'n': ParseLiteral("null"); break;
      default: ParseNumber();
    }
  }

  void ParseArray() {
    Expect('[');
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return;
    }
    while (true) {
      ParseValue();
      SkipWhitespace();
      const char c = Next();
      if (c == ']') return;
      if (c != ',') {
        --pos_;
        Fail("expected ',' or ']' in array");
      }
    }
  }

  // Parses an object; when `strings` is non-null, string-valued fields are
  // collected into it.
  void ParseObject(std::map<std::string, std::string>* strings) {
    Expect('{');
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      return;
    }
    while (true) {
      SkipWhitespace();
      const std::string key = ParseString();
      SkipWhitespace();
      Expect(':');
      SkipWhitespace();
      if (strings != nullptr && Peek() == '"') {
        (*strings)[key] = ParseString();
      } else {
        ParseValue();
      }
      SkipWhitespace();
      const char c = Next();
      if (c == '}') return;
      if (c != ',') {
        --pos_;
        Fail("expected ',' or '}' in object");
      }
    }
  }

  // Top level: an object that must contain a "traceEvents" array whose
  // elements each carry string name/cat/ph fields.
  void ParseTopLevel(ChromeTraceSummary* summary) {
    Expect('{');
    bool saw_trace_events = false;
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      Fail("missing \"traceEvents\" array");
    }
    while (true) {
      SkipWhitespace();
      const std::string key = ParseString();
      SkipWhitespace();
      Expect(':');
      SkipWhitespace();
      if (key == "traceEvents") {
        saw_trace_events = true;
        ParseEventArray(summary);
      } else {
        ParseValue();
      }
      SkipWhitespace();
      const char c = Next();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        Fail("expected ',' or '}' in object");
      }
    }
    if (!saw_trace_events) Fail("missing \"traceEvents\" array");
  }

  void ParseEventArray(ChromeTraceSummary* summary) {
    SkipWhitespace();
    Expect('[');
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return;
    }
    while (true) {
      SkipWhitespace();
      if (Peek() != '{') Fail("trace event is not an object");
      std::map<std::string, std::string> fields;
      ParseObject(&fields);
      for (const char* required : {"name", "cat", "ph"}) {
        if (fields.find(required) == fields.end()) {
          Fail(std::string("trace event missing string field \"") +
               required + "\"");
        }
      }
      if (summary != nullptr) {
        ++summary->num_events;
        summary->names.insert(fields["name"]);
        summary->categories.insert(fields["cat"]);
        summary->phases.insert(fields["ph"]);
      }
      SkipWhitespace();
      const char c = Next();
      if (c == ']') return;
      if (c != ',') {
        --pos_;
        Fail("expected ',' or ']' in traceEvents");
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void FormatParseError(const Parser::ParseError& parse_error,
                      std::string* error) {
  if (error == nullptr) return;
  char prefix[64];
  std::snprintf(prefix, sizeof(prefix), "at byte %zu: ",
                parse_error.position);
  *error = prefix + parse_error.message;
}

bool SetError(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

// ---- Prometheus text-format 0.0.4 helpers ----

bool IsMetricNameStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

bool IsMetricNameChar(char c) {
  return IsMetricNameStart(c) || (c >= '0' && c <= '9');
}

bool IsLabelNameStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

bool IsLabelNameChar(char c) {
  return IsLabelNameStart(c) || (c >= '0' && c <= '9');
}

bool IsValidMetricName(std::string_view name) {
  if (name.empty() || !IsMetricNameStart(name[0])) return false;
  for (const char c : name.substr(1)) {
    if (!IsMetricNameChar(c)) return false;
  }
  return true;
}

bool IsValidSampleValue(std::string_view token) {
  if (token == "+Inf" || token == "-Inf" || token == "NaN") return true;
  if (token.empty()) return false;
  const std::string copy(token);
  char* end = nullptr;
  std::strtod(copy.c_str(), &end);
  return end == copy.c_str() + copy.size();
}

// Validates one sample line: name[{labels}] value [timestamp]. Returns
// the metric name via *name on success.
bool ValidateSampleLine(std::string_view line, std::string* name,
                        std::string* error) {
  std::size_t pos = 0;
  while (pos < line.size() && IsMetricNameChar(line[pos])) ++pos;
  if (pos == 0 || !IsValidMetricName(line.substr(0, pos))) {
    return SetError(error, "bad metric name");
  }
  *name = std::string(line.substr(0, pos));
  if (pos < line.size() && line[pos] == '{') {
    ++pos;
    while (true) {
      if (pos >= line.size()) return SetError(error, "unterminated label set");
      if (line[pos] == '}') {
        ++pos;
        break;
      }
      const std::size_t label_start = pos;
      while (pos < line.size() && IsLabelNameChar(line[pos])) ++pos;
      if (pos == label_start || !IsLabelNameStart(line[label_start])) {
        return SetError(error, "bad label name");
      }
      if (pos >= line.size() || line[pos] != '=') {
        return SetError(error, "expected '=' after label name");
      }
      ++pos;
      if (pos >= line.size() || line[pos] != '"') {
        return SetError(error, "label value is not a quoted string");
      }
      ++pos;
      while (true) {
        if (pos >= line.size()) {
          return SetError(error, "unterminated label value");
        }
        const char c = line[pos];
        if (c == '"') {
          ++pos;
          break;
        }
        if (c == '\n') return SetError(error, "raw newline in label value");
        if (c == '\\') {
          ++pos;
          if (pos >= line.size() ||
              (line[pos] != '\\' && line[pos] != '"' && line[pos] != 'n')) {
            return SetError(error, "bad escape in label value");
          }
        }
        ++pos;
      }
      if (pos < line.size() && line[pos] == ',') ++pos;
    }
  }
  if (pos >= line.size() || line[pos] != ' ') {
    return SetError(error, "expected space before sample value");
  }
  while (pos < line.size() && line[pos] == ' ') ++pos;
  std::size_t value_end = pos;
  while (value_end < line.size() && line[value_end] != ' ') ++value_end;
  if (!IsValidSampleValue(line.substr(pos, value_end - pos))) {
    return SetError(error, "bad sample value");
  }
  pos = value_end;
  while (pos < line.size() && line[pos] == ' ') ++pos;
  if (pos < line.size()) {
    // Optional millisecond timestamp: an integer.
    if (line[pos] == '-') ++pos;
    if (pos >= line.size()) return SetError(error, "bad timestamp");
    for (; pos < line.size(); ++pos) {
      if (line[pos] < '0' || line[pos] > '9') {
        return SetError(error, "bad timestamp");
      }
    }
  }
  return true;
}

}  // namespace

bool ValidateChromeTrace(std::string_view json, std::string* error,
                         ChromeTraceSummary* summary) {
  ChromeTraceSummary local;
  try {
    Parser(json).ParseDocument(&local);
  } catch (const Parser::ParseError& parse_error) {
    FormatParseError(parse_error, error);
    return false;
  }
  if (summary != nullptr) *summary = local;
  if (error != nullptr) error->clear();
  return true;
}

bool ParseFlatJsonObject(std::string_view line, FlatObject* fields,
                         std::string* error) {
  FlatObject local;
  try {
    Parser(line).ParseFlatDocument(&local);
  } catch (const Parser::ParseError& parse_error) {
    FormatParseError(parse_error, error);
    return false;
  }
  if (fields != nullptr) *fields = std::move(local);
  if (error != nullptr) error->clear();
  return true;
}

bool ValidateLedgerLine(std::string_view line, FlatObject* fields,
                        std::string* error) {
  FlatObject local;
  if (!ParseFlatJsonObject(line, &local, error)) return false;

  const auto require_number = [&](const char* key, bool required) {
    const auto it = local.find(key);
    if (it == local.end()) {
      if (required) {
        SetError(error, std::string("missing numeric field \"") + key + "\"");
        return false;
      }
      return true;
    }
    if (it->second.kind != FlatValue::Kind::kNumber) {
      SetError(error, std::string("field \"") + key + "\" is not a number");
      return false;
    }
    return true;
  };
  const auto require_string = [&](const char* key) {
    const auto it = local.find(key);
    if (it != local.end() && it->second.kind != FlatValue::Kind::kString) {
      SetError(error, std::string("field \"") + key + "\" is not a string");
      return false;
    }
    return true;
  };

  if (!require_number("seq", /*required=*/true)) return false;
  if (!require_number("ts_ns", /*required=*/true)) return false;
  const auto kind = local.find("kind");
  if (kind == local.end() || kind->second.kind != FlatValue::Kind::kString ||
      kind->second.text.empty()) {
    return SetError(error, "missing or empty string field \"kind\"");
  }
  for (const char* key : {"unit", "name", "variant", "assumption", "assumed",
                          "observed", "detail"}) {
    if (!require_string(key)) return false;
  }
  for (const char* key : {"level", "cache_hit", "validate_ns", "execute_ns",
                          "generate_ns", "ops", "bytes", "fused_regions",
                          "fused_ops"}) {
    if (!require_number(key, /*required=*/false)) return false;
  }

  if (fields != nullptr) *fields = std::move(local);
  if (error != nullptr) error->clear();
  return true;
}

bool ValidatePrometheusText(std::string_view text, std::string* error,
                            PrometheusSummary* summary) {
  PrometheusSummary local;
  int line_number = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, (eol == std::string_view::npos ? text.size() : eol) -
                             pos);
    pos = (eol == std::string_view::npos) ? text.size() + 1 : eol + 1;
    ++line_number;
    if (line.empty()) continue;

    std::string line_error;
    if (line[0] == '#') {
      // "# HELP <name> <docstring>" / "# TYPE <name> <type>"; other
      // comments are ignored per the format spec.
      if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
        const bool is_type = line[2] == 'T';
        const std::string_view rest = line.substr(7);
        const std::size_t space = rest.find(' ');
        const std::string_view name =
            rest.substr(0, space == std::string_view::npos ? rest.size()
                                                           : space);
        if (!IsValidMetricName(name)) {
          line_error = "bad metric name in comment";
        } else if (is_type) {
          const std::string_view type =
              space == std::string_view::npos ? std::string_view()
                                              : rest.substr(space + 1);
          if (type != "counter" && type != "gauge" && type != "histogram" &&
              type != "summary" && type != "untyped") {
            line_error = "bad metric type";
          } else {
            local.families.insert(std::string(name));
          }
        }
      }
    } else {
      std::string name;
      if (ValidateSampleLine(line, &name, &line_error)) {
        ++local.num_samples;
        local.sample_names.insert(std::move(name));
      }
    }
    if (!line_error.empty()) {
      char prefix[32];
      std::snprintf(prefix, sizeof(prefix), "line %d: ", line_number);
      return SetError(error, prefix + line_error);
    }
  }
  if (summary != nullptr) *summary = std::move(local);
  if (error != nullptr) error->clear();
  return true;
}

}  // namespace obs
}  // namespace janus
