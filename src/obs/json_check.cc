#include "obs/json_check.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <utility>
#include <vector>

namespace janus {
namespace obs {
namespace {

// Recursive-descent JSON parser. Values are discarded except for strings,
// which are returned so object walkers can read the fields they care
// about. Throws ParseError (internal) on malformed input.
class Parser {
 public:
  struct ParseError {
    std::size_t position;
    std::string message;
  };

  explicit Parser(std::string_view text) : text_(text) {}

  // Parses one complete JSON value and requires end-of-input after it.
  void ParseDocument(ChromeTraceSummary* summary) {
    SkipWhitespace();
    ParseTopLevel(summary);
    SkipWhitespace();
    if (pos_ != text_.size()) Fail("trailing content after JSON document");
  }

  // Parses one flat JSON object (no nested objects/arrays), capturing
  // every top-level field, and requires end-of-input after it.
  void ParseFlatDocument(FlatObject* fields) {
    SkipWhitespace();
    Expect('{');
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
    } else {
      while (true) {
        SkipWhitespace();
        const std::string key = ParseString();
        SkipWhitespace();
        Expect(':');
        SkipWhitespace();
        FlatValue value;
        switch (Peek()) {
          case '{':
          case '[':
            Fail("nested value in flat object");
          case '"':
            value.kind = FlatValue::Kind::kString;
            value.text = ParseString();
            break;
          case 't':
            ParseLiteral("true");
            value.kind = FlatValue::Kind::kBool;
            value.text = "true";
            break;
          case 'f':
            ParseLiteral("false");
            value.kind = FlatValue::Kind::kBool;
            value.text = "false";
            break;
          case 'n':
            ParseLiteral("null");
            value.kind = FlatValue::Kind::kNull;
            value.text = "null";
            break;
          default: {
            const std::size_t start = pos_;
            ParseNumber();
            value.kind = FlatValue::Kind::kNumber;
            value.text = std::string(text_.substr(start, pos_ - start));
          }
        }
        if (fields != nullptr) (*fields)[key] = std::move(value);
        SkipWhitespace();
        const char c = Next();
        if (c == '}') break;
        if (c != ',') {
          --pos_;
          Fail("expected ',' or '}' in object");
        }
      }
    }
    SkipWhitespace();
    if (pos_ != text_.size()) Fail("trailing content after JSON object");
  }

  // Parses a /profilez?format=json document against the obs/profile.h
  // schema and requires end-of-input after it.
  void ParseProfileDocument(ProfileJsonSummary* summary) {
    SkipWhitespace();
    Expect('{');
    bool saw_enabled = false;
    bool saw_stride = false;
    bool saw_units = false;
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      Fail("missing \"units\" array");
    }
    while (true) {
      SkipWhitespace();
      const std::string key = ParseString();
      SkipWhitespace();
      Expect(':');
      SkipWhitespace();
      if (key == "enabled") {
        saw_enabled = true;
        if (Peek() == 't') {
          ParseLiteral("true");
          if (summary != nullptr) summary->enabled = true;
        } else {
          ParseLiteral("false");
        }
      } else if (key == "sample_stride") {
        saw_stride = true;
        const std::size_t start = pos_;
        ParseNumber();
        if (summary != nullptr) {
          summary->sample_stride =
              std::atoi(std::string(text_.substr(start, pos_ - start)).c_str());
        }
      } else if (key == "units") {
        saw_units = true;
        ParseProfileUnitArray(summary);
      } else {
        ParseValue();
      }
      SkipWhitespace();
      const char c = Next();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        Fail("expected ',' or '}' in object");
      }
    }
    if (!saw_enabled) Fail("missing boolean field \"enabled\"");
    if (!saw_stride) Fail("missing numeric field \"sample_stride\"");
    if (!saw_units) Fail("missing \"units\" array");
    SkipWhitespace();
    if (pos_ != text_.size()) Fail("trailing content after JSON document");
  }

 private:
  [[noreturn]] void Fail(const std::string& message) const {
    throw ParseError{pos_, message};
  }

  char Peek() const {
    if (pos_ >= text_.size()) Fail("unexpected end of input");
    return text_[pos_];
  }

  char Next() {
    const char c = Peek();
    ++pos_;
    return c;
  }

  void Expect(char c) {
    if (Next() != c) {
      --pos_;
      Fail(std::string("expected '") + c + "'");
    }
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      const char c = Next();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char escape = Next();
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = Next();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              Fail("bad \\u escape");
            }
          }
          // Validation only: non-ASCII code points are replaced, not
          // round-tripped.
          out.push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default:
          Fail("bad escape character");
      }
    }
  }

  void ParseNumber() {
    if (Peek() == '-') ++pos_;
    if (std::isdigit(static_cast<unsigned char>(Peek())) == 0) {
      Fail("bad number");
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (std::isdigit(static_cast<unsigned char>(Peek())) == 0) {
        Fail("bad number: no digits after decimal point");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (std::isdigit(static_cast<unsigned char>(Peek())) == 0) {
        Fail("bad number: no exponent digits");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
  }

  void ParseLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      Fail("bad literal");
    }
    pos_ += literal.size();
  }

  // Generic value: validated and discarded.
  void ParseValue() {
    SkipWhitespace();
    switch (Peek()) {
      case '{': ParseObject(nullptr); break;
      case '[': ParseArray(); break;
      case '"': ParseString(); break;
      case 't': ParseLiteral("true"); break;
      case 'f': ParseLiteral("false"); break;
      case 'n': ParseLiteral("null"); break;
      default: ParseNumber();
    }
  }

  void ParseArray() {
    Expect('[');
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return;
    }
    while (true) {
      ParseValue();
      SkipWhitespace();
      const char c = Next();
      if (c == ']') return;
      if (c != ',') {
        --pos_;
        Fail("expected ',' or ']' in array");
      }
    }
  }

  // Parses an object; when `strings` is non-null, string-valued fields are
  // collected into it.
  void ParseObject(std::map<std::string, std::string>* strings) {
    Expect('{');
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      return;
    }
    while (true) {
      SkipWhitespace();
      const std::string key = ParseString();
      SkipWhitespace();
      Expect(':');
      SkipWhitespace();
      if (strings != nullptr && Peek() == '"') {
        (*strings)[key] = ParseString();
      } else {
        ParseValue();
      }
      SkipWhitespace();
      const char c = Next();
      if (c == '}') return;
      if (c != ',') {
        --pos_;
        Fail("expected ',' or '}' in object");
      }
    }
  }

  // Parses an object into string fields (like ParseObject) but also records
  // which keys held numeric values, so schema walkers can distinguish a
  // missing field from a mistyped one.
  void ParseTypedObject(std::map<std::string, std::string>* strings,
                        std::set<std::string>* numbers) {
    Expect('{');
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      return;
    }
    while (true) {
      SkipWhitespace();
      const std::string key = ParseString();
      SkipWhitespace();
      Expect(':');
      SkipWhitespace();
      const char c = Peek();
      if (c == '"') {
        (*strings)[key] = ParseString();
      } else if (c == '-' || (c >= '0' && c <= '9')) {
        ParseNumber();
        numbers->insert(key);
      } else {
        ParseValue();
      }
      SkipWhitespace();
      const char sep = Next();
      if (sep == '}') return;
      if (sep != ',') {
        --pos_;
        Fail("expected ',' or '}' in object");
      }
    }
  }

  // An array of flat record objects, each validated against required
  // string/number keys; returns the element count.
  int ParseProfileRecordArray(std::initializer_list<const char*> req_strings,
                              std::initializer_list<const char*> req_numbers,
                              const char* what) {
    Expect('[');
    SkipWhitespace();
    int count = 0;
    if (Peek() == ']') {
      ++pos_;
      return count;
    }
    while (true) {
      SkipWhitespace();
      if (Peek() != '{') Fail(std::string(what) + " entry is not an object");
      std::map<std::string, std::string> strings;
      std::set<std::string> numbers;
      ParseTypedObject(&strings, &numbers);
      for (const char* key : req_strings) {
        if (strings.find(key) == strings.end()) {
          Fail(std::string(what) + " entry missing string field \"" + key +
               "\"");
        }
      }
      for (const char* key : req_numbers) {
        if (numbers.find(key) == numbers.end()) {
          Fail(std::string(what) + " entry missing numeric field \"" + key +
               "\"");
        }
      }
      ++count;
      SkipWhitespace();
      const char c = Next();
      if (c == ']') return count;
      if (c != ',') {
        --pos_;
        Fail(std::string("expected ',' or ']' in ") + what);
      }
    }
  }

  void ParseProfileUnitArray(ProfileJsonSummary* summary) {
    Expect('[');
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return;
    }
    while (true) {
      SkipWhitespace();
      if (Peek() != '{') Fail("unit entry is not an object");
      Expect('{');
      std::map<std::string, std::string> strings;
      std::set<std::string> numbers;
      bool saw_lines = false;
      bool saw_nodes = false;
      SkipWhitespace();
      if (Peek() == '}') {
        ++pos_;
        Fail("empty unit entry");
      }
      while (true) {
        SkipWhitespace();
        const std::string key = ParseString();
        SkipWhitespace();
        Expect(':');
        SkipWhitespace();
        if (key == "lines") {
          saw_lines = true;
          const int n = ParseProfileRecordArray(
              {"function"}, {"line", "execution_ns", "count"}, "lines");
          if (summary != nullptr) summary->num_lines += n;
        } else if (key == "top_nodes") {
          saw_nodes = true;
          const int n = ParseProfileRecordArray(
              {"node", "op", "function"},
              {"line", "count", "total_ns", "max_ns"}, "top_nodes");
          if (summary != nullptr) summary->num_nodes += n;
        } else if (Peek() == '"') {
          strings[key] = ParseString();
        } else if (Peek() == '-' || (Peek() >= '0' && Peek() <= '9')) {
          ParseNumber();
          numbers.insert(key);
        } else {
          ParseValue();
        }
        SkipWhitespace();
        const char c = Next();
        if (c == '}') break;
        if (c != ',') {
          --pos_;
          Fail("expected ',' or '}' in unit entry");
        }
      }
      for (const char* key : {"unit", "variant"}) {
        if (strings.find(key) == strings.end()) {
          Fail(std::string("unit entry missing string field \"") + key +
               "\"");
        }
      }
      for (const char* key : {"level", "runs", "generation_ns",
                              "validation_ns", "execution_ns"}) {
        if (numbers.find(key) == numbers.end()) {
          Fail(std::string("unit entry missing numeric field \"") + key +
               "\"");
        }
      }
      if (!saw_lines) Fail("unit entry missing \"lines\" array");
      if (!saw_nodes) Fail("unit entry missing \"top_nodes\" array");
      if (summary != nullptr) {
        ++summary->num_units;
        summary->units.insert(strings["unit"]);
      }
      SkipWhitespace();
      const char c = Next();
      if (c == ']') return;
      if (c != ',') {
        --pos_;
        Fail("expected ',' or ']' in units");
      }
    }
  }

  // Top level: an object that must contain a "traceEvents" array whose
  // elements each carry string name/cat/ph fields.
  void ParseTopLevel(ChromeTraceSummary* summary) {
    Expect('{');
    bool saw_trace_events = false;
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      Fail("missing \"traceEvents\" array");
    }
    while (true) {
      SkipWhitespace();
      const std::string key = ParseString();
      SkipWhitespace();
      Expect(':');
      SkipWhitespace();
      if (key == "traceEvents") {
        saw_trace_events = true;
        ParseEventArray(summary);
      } else {
        ParseValue();
      }
      SkipWhitespace();
      const char c = Next();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        Fail("expected ',' or '}' in object");
      }
    }
    if (!saw_trace_events) Fail("missing \"traceEvents\" array");
  }

  void ParseEventArray(ChromeTraceSummary* summary) {
    SkipWhitespace();
    Expect('[');
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return;
    }
    while (true) {
      SkipWhitespace();
      if (Peek() != '{') Fail("trace event is not an object");
      std::map<std::string, std::string> fields;
      ParseObject(&fields);
      for (const char* required : {"name", "cat", "ph"}) {
        if (fields.find(required) == fields.end()) {
          Fail(std::string("trace event missing string field \"") +
               required + "\"");
        }
      }
      if (summary != nullptr) {
        ++summary->num_events;
        summary->names.insert(fields["name"]);
        summary->categories.insert(fields["cat"]);
        summary->phases.insert(fields["ph"]);
      }
      SkipWhitespace();
      const char c = Next();
      if (c == ']') return;
      if (c != ',') {
        --pos_;
        Fail("expected ',' or ']' in traceEvents");
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void FormatParseError(const Parser::ParseError& parse_error,
                      std::string* error) {
  if (error == nullptr) return;
  char prefix[64];
  std::snprintf(prefix, sizeof(prefix), "at byte %zu: ",
                parse_error.position);
  *error = prefix + parse_error.message;
}

bool SetError(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

// ---- Prometheus text-format 0.0.4 helpers ----

bool IsMetricNameStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

bool IsMetricNameChar(char c) {
  return IsMetricNameStart(c) || (c >= '0' && c <= '9');
}

bool IsLabelNameStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

bool IsLabelNameChar(char c) {
  return IsLabelNameStart(c) || (c >= '0' && c <= '9');
}

bool IsValidMetricName(std::string_view name) {
  if (name.empty() || !IsMetricNameStart(name[0])) return false;
  for (const char c : name.substr(1)) {
    if (!IsMetricNameChar(c)) return false;
  }
  return true;
}

// Sample VALUES must be finite: a NaN or ±Inf sample poisons every
// aggregation downstream (rate(), sum()) and always indicates a broken
// exporter — an uninitialized cell, a 0/0 ratio, an overflowed histogram
// sum. (The "+Inf" LABEL value on histogram `le` buckets is untouched:
// labels are parsed as quoted strings, never through here.)
bool IsValidSampleValue(std::string_view token, std::string* error) {
  if (token == "+Inf" || token == "-Inf" || token == "NaN" ||
      token == "+inf" || token == "-inf" || token == "inf" ||
      token == "nan" || token == "Inf") {
    return SetError(error, "non-finite sample value");
  }
  if (token.empty()) return SetError(error, "bad sample value");
  const std::string copy(token);
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size()) {
    return SetError(error, "bad sample value");
  }
  if (!std::isfinite(value)) {
    // e.g. "1e999" overflows to +Inf without spelling it.
    return SetError(error, "non-finite sample value");
  }
  return true;
}

// Validates one sample line: name[{labels}] value [timestamp]. Returns the
// metric name via *name and the canonical series identity (name plus
// sorted label pairs) via *series_key on success — two lines with equal
// keys are the same series sampled twice, which the format forbids.
bool ValidateSampleLine(std::string_view line, std::string* name,
                        std::string* series_key, std::string* error) {
  std::size_t pos = 0;
  while (pos < line.size() && IsMetricNameChar(line[pos])) ++pos;
  if (pos == 0 || !IsValidMetricName(line.substr(0, pos))) {
    return SetError(error, "bad metric name");
  }
  *name = std::string(line.substr(0, pos));
  // Label pairs, collected for the canonical series key. Sorted so label
  // order never disguises a duplicate series.
  std::vector<std::pair<std::string, std::string>> labels;
  if (pos < line.size() && line[pos] == '{') {
    ++pos;
    while (true) {
      if (pos >= line.size()) return SetError(error, "unterminated label set");
      if (line[pos] == '}') {
        ++pos;
        break;
      }
      const std::size_t label_start = pos;
      while (pos < line.size() && IsLabelNameChar(line[pos])) ++pos;
      if (pos == label_start || !IsLabelNameStart(line[label_start])) {
        return SetError(error, "bad label name");
      }
      const std::string_view label_name =
          line.substr(label_start, pos - label_start);
      if (pos >= line.size() || line[pos] != '=') {
        return SetError(error, "expected '=' after label name");
      }
      ++pos;
      if (pos >= line.size() || line[pos] != '"') {
        return SetError(error, "label value is not a quoted string");
      }
      ++pos;
      const std::size_t value_start = pos;
      while (true) {
        if (pos >= line.size()) {
          return SetError(error, "unterminated label value");
        }
        const char c = line[pos];
        if (c == '"') {
          break;
        }
        if (c == '\n') return SetError(error, "raw newline in label value");
        if (c == '\\') {
          ++pos;
          if (pos >= line.size() ||
              (line[pos] != '\\' && line[pos] != '"' && line[pos] != 'n')) {
            return SetError(error, "bad escape in label value");
          }
        }
        ++pos;
      }
      labels.emplace_back(
          std::string(label_name),
          std::string(line.substr(value_start, pos - value_start)));
      ++pos;  // past the closing quote
      if (pos < line.size() && line[pos] == ',') ++pos;
    }
  }
  if (series_key != nullptr) {
    std::sort(labels.begin(), labels.end());
    *series_key = *name;
    for (const auto& [label_name, label_value] : labels) {
      *series_key += '{' + label_name + '=' + label_value + '}';
    }
  }
  if (pos >= line.size() || line[pos] != ' ') {
    return SetError(error, "expected space before sample value");
  }
  while (pos < line.size() && line[pos] == ' ') ++pos;
  std::size_t value_end = pos;
  while (value_end < line.size() && line[value_end] != ' ') ++value_end;
  if (!IsValidSampleValue(line.substr(pos, value_end - pos), error)) {
    return false;
  }
  pos = value_end;
  while (pos < line.size() && line[pos] == ' ') ++pos;
  if (pos < line.size()) {
    // Optional millisecond timestamp: an integer.
    if (line[pos] == '-') ++pos;
    if (pos >= line.size()) return SetError(error, "bad timestamp");
    for (; pos < line.size(); ++pos) {
      if (line[pos] < '0' || line[pos] > '9') {
        return SetError(error, "bad timestamp");
      }
    }
  }
  return true;
}

}  // namespace

bool ValidateChromeTrace(std::string_view json, std::string* error,
                         ChromeTraceSummary* summary) {
  ChromeTraceSummary local;
  try {
    Parser(json).ParseDocument(&local);
  } catch (const Parser::ParseError& parse_error) {
    FormatParseError(parse_error, error);
    return false;
  }
  if (summary != nullptr) *summary = local;
  if (error != nullptr) error->clear();
  return true;
}

bool ParseFlatJsonObject(std::string_view line, FlatObject* fields,
                         std::string* error) {
  FlatObject local;
  try {
    Parser(line).ParseFlatDocument(&local);
  } catch (const Parser::ParseError& parse_error) {
    FormatParseError(parse_error, error);
    return false;
  }
  if (fields != nullptr) *fields = std::move(local);
  if (error != nullptr) error->clear();
  return true;
}

bool ValidateLedgerLine(std::string_view line, FlatObject* fields,
                        std::string* error) {
  FlatObject local;
  if (!ParseFlatJsonObject(line, &local, error)) return false;

  const auto require_number = [&](const char* key, bool required) {
    const auto it = local.find(key);
    if (it == local.end()) {
      if (required) {
        SetError(error, std::string("missing numeric field \"") + key + "\"");
        return false;
      }
      return true;
    }
    if (it->second.kind != FlatValue::Kind::kNumber) {
      SetError(error, std::string("field \"") + key + "\" is not a number");
      return false;
    }
    return true;
  };
  const auto require_string = [&](const char* key) {
    const auto it = local.find(key);
    if (it != local.end() && it->second.kind != FlatValue::Kind::kString) {
      SetError(error, std::string("field \"") + key + "\" is not a string");
      return false;
    }
    return true;
  };

  if (!require_number("seq", /*required=*/true)) return false;
  if (!require_number("ts_ns", /*required=*/true)) return false;
  const auto kind = local.find("kind");
  if (kind == local.end() || kind->second.kind != FlatValue::Kind::kString ||
      kind->second.text.empty()) {
    return SetError(error, "missing or empty string field \"kind\"");
  }
  for (const char* key : {"unit", "name", "variant", "assumption", "assumed",
                          "observed", "detail"}) {
    if (!require_string(key)) return false;
  }
  for (const char* key : {"level", "cache_hit", "validate_ns", "execute_ns",
                          "generate_ns", "ops", "bytes", "fused_regions",
                          "fused_ops"}) {
    if (!require_number(key, /*required=*/false)) return false;
  }

  if (fields != nullptr) *fields = std::move(local);
  if (error != nullptr) error->clear();
  return true;
}

bool ValidateProfileJson(std::string_view json, std::string* error,
                         ProfileJsonSummary* summary) {
  ProfileJsonSummary local;
  try {
    Parser(json).ParseProfileDocument(&local);
  } catch (const Parser::ParseError& parse_error) {
    FormatParseError(parse_error, error);
    return false;
  }
  if (summary != nullptr) *summary = std::move(local);
  if (error != nullptr) error->clear();
  return true;
}

bool ValidatePrometheusText(std::string_view text, std::string* error,
                            PrometheusSummary* summary) {
  PrometheusSummary local;
  std::set<std::string> seen_series;
  int line_number = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, (eol == std::string_view::npos ? text.size() : eol) -
                             pos);
    pos = (eol == std::string_view::npos) ? text.size() + 1 : eol + 1;
    ++line_number;
    if (line.empty()) continue;

    std::string line_error;
    if (line[0] == '#') {
      // "# HELP <name> <docstring>" / "# TYPE <name> <type>"; other
      // comments are ignored per the format spec.
      if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
        const bool is_type = line[2] == 'T';
        const std::string_view rest = line.substr(7);
        const std::size_t space = rest.find(' ');
        const std::string_view name =
            rest.substr(0, space == std::string_view::npos ? rest.size()
                                                           : space);
        if (!IsValidMetricName(name)) {
          line_error = "bad metric name in comment";
        } else if (is_type) {
          const std::string_view type =
              space == std::string_view::npos ? std::string_view()
                                              : rest.substr(space + 1);
          if (type != "counter" && type != "gauge" && type != "histogram" &&
              type != "summary" && type != "untyped") {
            line_error = "bad metric type";
          } else {
            local.families.insert(std::string(name));
          }
        }
      }
    } else {
      std::string name;
      std::string series_key;
      if (ValidateSampleLine(line, &name, &series_key, &line_error)) {
        ++local.num_samples;
        local.sample_names.insert(std::move(name));
        // The exposition format allows each series (name + label set)
        // exactly once per scrape; a duplicate means two sources collided
        // on one name or an exporter emitted a family twice.
        if (!seen_series.insert(std::move(series_key)).second) {
          line_error = "duplicate series";
        }
      }
    }
    if (!line_error.empty()) {
      char prefix[32];
      std::snprintf(prefix, sizeof(prefix), "line %d: ", line_number);
      return SetError(error, prefix + line_error);
    }
  }
  if (summary != nullptr) *summary = std::move(local);
  if (error != nullptr) error->clear();
  return true;
}

}  // namespace obs
}  // namespace janus
