#include "obs/json_check.h"

#include <cctype>
#include <cstdio>
#include <map>
#include <optional>

namespace janus {
namespace obs {
namespace {

// Recursive-descent JSON parser. Values are discarded except for strings,
// which are returned so object walkers can read the fields they care
// about. Throws ParseError (internal) on malformed input.
class Parser {
 public:
  struct ParseError {
    std::size_t position;
    std::string message;
  };

  explicit Parser(std::string_view text) : text_(text) {}

  // Parses one complete JSON value and requires end-of-input after it.
  void ParseDocument(ChromeTraceSummary* summary) {
    SkipWhitespace();
    ParseTopLevel(summary);
    SkipWhitespace();
    if (pos_ != text_.size()) Fail("trailing content after JSON document");
  }

 private:
  [[noreturn]] void Fail(const std::string& message) const {
    throw ParseError{pos_, message};
  }

  char Peek() const {
    if (pos_ >= text_.size()) Fail("unexpected end of input");
    return text_[pos_];
  }

  char Next() {
    const char c = Peek();
    ++pos_;
    return c;
  }

  void Expect(char c) {
    if (Next() != c) {
      --pos_;
      Fail(std::string("expected '") + c + "'");
    }
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      const char c = Next();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char escape = Next();
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = Next();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              Fail("bad \\u escape");
            }
          }
          // Validation only: non-ASCII code points are replaced, not
          // round-tripped.
          out.push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default:
          Fail("bad escape character");
      }
    }
  }

  void ParseNumber() {
    if (Peek() == '-') ++pos_;
    if (std::isdigit(static_cast<unsigned char>(Peek())) == 0) {
      Fail("bad number");
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (std::isdigit(static_cast<unsigned char>(Peek())) == 0) {
        Fail("bad number: no digits after decimal point");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (std::isdigit(static_cast<unsigned char>(Peek())) == 0) {
        Fail("bad number: no exponent digits");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
  }

  void ParseLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      Fail("bad literal");
    }
    pos_ += literal.size();
  }

  // Generic value: validated and discarded.
  void ParseValue() {
    SkipWhitespace();
    switch (Peek()) {
      case '{': ParseObject(nullptr); break;
      case '[': ParseArray(); break;
      case '"': ParseString(); break;
      case 't': ParseLiteral("true"); break;
      case 'f': ParseLiteral("false"); break;
      case 'n': ParseLiteral("null"); break;
      default: ParseNumber();
    }
  }

  void ParseArray() {
    Expect('[');
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return;
    }
    while (true) {
      ParseValue();
      SkipWhitespace();
      const char c = Next();
      if (c == ']') return;
      if (c != ',') {
        --pos_;
        Fail("expected ',' or ']' in array");
      }
    }
  }

  // Parses an object; when `strings` is non-null, string-valued fields are
  // collected into it.
  void ParseObject(std::map<std::string, std::string>* strings) {
    Expect('{');
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      return;
    }
    while (true) {
      SkipWhitespace();
      const std::string key = ParseString();
      SkipWhitespace();
      Expect(':');
      SkipWhitespace();
      if (strings != nullptr && Peek() == '"') {
        (*strings)[key] = ParseString();
      } else {
        ParseValue();
      }
      SkipWhitespace();
      const char c = Next();
      if (c == '}') return;
      if (c != ',') {
        --pos_;
        Fail("expected ',' or '}' in object");
      }
    }
  }

  // Top level: an object that must contain a "traceEvents" array whose
  // elements each carry string name/cat/ph fields.
  void ParseTopLevel(ChromeTraceSummary* summary) {
    Expect('{');
    bool saw_trace_events = false;
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      Fail("missing \"traceEvents\" array");
    }
    while (true) {
      SkipWhitespace();
      const std::string key = ParseString();
      SkipWhitespace();
      Expect(':');
      SkipWhitespace();
      if (key == "traceEvents") {
        saw_trace_events = true;
        ParseEventArray(summary);
      } else {
        ParseValue();
      }
      SkipWhitespace();
      const char c = Next();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        Fail("expected ',' or '}' in object");
      }
    }
    if (!saw_trace_events) Fail("missing \"traceEvents\" array");
  }

  void ParseEventArray(ChromeTraceSummary* summary) {
    SkipWhitespace();
    Expect('[');
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return;
    }
    while (true) {
      SkipWhitespace();
      if (Peek() != '{') Fail("trace event is not an object");
      std::map<std::string, std::string> fields;
      ParseObject(&fields);
      for (const char* required : {"name", "cat", "ph"}) {
        if (fields.find(required) == fields.end()) {
          Fail(std::string("trace event missing string field \"") +
               required + "\"");
        }
      }
      if (summary != nullptr) {
        ++summary->num_events;
        summary->names.insert(fields["name"]);
        summary->categories.insert(fields["cat"]);
        summary->phases.insert(fields["ph"]);
      }
      SkipWhitespace();
      const char c = Next();
      if (c == ']') return;
      if (c != ',') {
        --pos_;
        Fail("expected ',' or ']' in traceEvents");
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool ValidateChromeTrace(std::string_view json, std::string* error,
                         ChromeTraceSummary* summary) {
  ChromeTraceSummary local;
  try {
    Parser(json).ParseDocument(&local);
  } catch (const Parser::ParseError& parse_error) {
    if (error != nullptr) {
      char prefix[64];
      std::snprintf(prefix, sizeof(prefix), "at byte %zu: ",
                    parse_error.position);
      *error = prefix + parse_error.message;
    }
    return false;
  }
  if (summary != nullptr) *summary = local;
  if (error != nullptr) error->clear();
  return true;
}

}  // namespace obs
}  // namespace janus
