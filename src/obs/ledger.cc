#include "obs/ledger.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/logging.h"
#include "obs/trace.h"

namespace janus {
namespace obs {

std::atomic<bool> Ledger::enabled_{false};

// Per-slot seqlock cell. `version` is even when the slot is stable and odd
// while a writer (or a snapshotting reader) holds it; LedgerRecord carries
// strings, so readers copy under the same claim protocol instead of the
// classic retry-read — a skipped slot is an acceptable loss for a flight
// recorder, a torn std::string is not.
struct Ledger::Slot {
  std::atomic<std::uint64_t> version{0};
  LedgerRecord record;

  // Claims the slot (spins only on wrap collisions / concurrent snapshot).
  // The version must be re-read every iteration: an odd value short-circuits
  // the CAS, so a stale load would spin forever once another claimant is
  // observed mid-hold.
  std::uint64_t Acquire() {
    for (;;) {
      std::uint64_t v = version.load(std::memory_order_acquire);
      if ((v & 1) == 0 &&
          version.compare_exchange_weak(v, v + 1,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
        return v + 1;
      }
    }
  }
  void Release(std::uint64_t held) {
    version.store(held + 1, std::memory_order_release);
  }
  // Non-blocking claim for snapshot readers: never stalls a writer that is
  // mid-publish; the reader just skips the slot.
  bool TryAcquire(std::uint64_t* held) {
    std::uint64_t v = version.load(std::memory_order_acquire);
    if ((v & 1) != 0) return false;
    if (!version.compare_exchange_strong(v, v + 1,
                                         std::memory_order_acquire)) {
      return false;
    }
    *held = v + 1;
    return true;
  }
};

namespace {

std::size_t EnvCapacity() {
  const char* env = std::getenv("JANUS_LEDGER_CAPACITY");
  if (env == nullptr || *env == '\0') return Ledger::kDefaultCapacity;
  char* end = nullptr;
  const long long parsed = std::strtoll(env, &end, 10);
  if (end == env || parsed <= 0) return Ledger::kDefaultCapacity;
  return static_cast<std::size_t>(parsed);
}

}  // namespace

Ledger::Ledger() { Allocate(EnvCapacity()); }

void Ledger::Allocate(std::size_t capacity) {
  capacity_ = std::bit_ceil(std::max<std::size_t>(capacity, 2));
  mask_ = capacity_ - 1;
  slots_ = std::make_unique<Slot[]>(capacity_);
  next_.store(0, std::memory_order_relaxed);
}

Ledger& Ledger::Global() {
  // Leaked: producers and the JANUS_LEDGER atexit dump may run during
  // process teardown and must always find a live ring.
  static Ledger* ledger = new Ledger();
  return *ledger;
}

void Ledger::Enable() { enabled_.store(true, std::memory_order_relaxed); }
void Ledger::Disable() { enabled_.store(false, std::memory_order_relaxed); }

void Ledger::Record(LedgerRecord record) {
  const std::int64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  record.seq = seq;
  if (record.ts_ns < 0) record.ts_ns = Trace::NowNs();
  Slot& slot = slots_[static_cast<std::size_t>(seq) & mask_];
  const std::uint64_t held = slot.Acquire();
  slot.record = std::move(record);
  slot.Release(held);
}

std::vector<LedgerRecord> Ledger::Snapshot(std::size_t max_records) const {
  const std::int64_t end = next_.load(std::memory_order_acquire);
  std::int64_t count = std::min<std::int64_t>(
      end, static_cast<std::int64_t>(capacity_));
  if (max_records > 0) {
    count = std::min<std::int64_t>(count,
                                   static_cast<std::int64_t>(max_records));
  }
  std::vector<LedgerRecord> records;
  records.reserve(static_cast<std::size_t>(count));
  for (std::int64_t seq = end - count; seq < end; ++seq) {
    Slot& slot = slots_[static_cast<std::size_t>(seq) & mask_];
    std::uint64_t held = 0;
    if (!slot.TryAcquire(&held)) continue;  // mid-write: skip, never tear
    LedgerRecord copy = slot.record;
    slot.Release(held);
    // The slot may hold a record newer than `seq` (wrapped while we
    // iterated) or older (writer claimed the ticket but has not published
    // yet); both would break the oldest-first ordering contract.
    if (copy.seq == seq) records.push_back(std::move(copy));
  }
  return records;
}

std::int64_t Ledger::TotalRecorded() const {
  return next_.load(std::memory_order_relaxed);
}

std::int64_t Ledger::TotalDropped() const {
  const std::int64_t recorded = TotalRecorded();
  const auto capacity = static_cast<std::int64_t>(capacity_);
  return recorded > capacity ? recorded - capacity : 0;
}

void Ledger::Reset() { Allocate(capacity_); }

void Ledger::SetCapacityForTesting(std::size_t capacity) {
  Allocate(capacity == 0 ? EnvCapacity() : capacity);
}

void AppendJsonEscaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += hex;
        } else {
          out += c;
        }
    }
  }
}

std::string PointerToHex(const void* pointer) {
  char text[32];
  std::snprintf(text, sizeof(text), "0x%llx",
                static_cast<unsigned long long>(
                    reinterpret_cast<std::uintptr_t>(pointer)));
  return text;
}

namespace {

void AppendStringField(std::string& out, const char* key,
                       std::string_view value, bool* first) {
  if (value.empty()) return;
  if (!*first) out += ',';
  *first = false;
  out += '"';
  out += key;
  out += "\":\"";
  AppendJsonEscaped(out, value);
  out += '"';
}

void AppendIntField(std::string& out, const char* key, std::int64_t value,
                    bool* first, bool always = false) {
  if (value < 0 && !always) return;
  if (!*first) out += ',';
  *first = false;
  out += '"';
  out += key;
  out += "\":";
  out += std::to_string(value);
}

}  // namespace

std::string Ledger::ToJsonLine(const LedgerRecord& record) {
  std::string out = "{";
  bool first = true;
  AppendIntField(out, "seq", record.seq, &first, /*always=*/true);
  AppendIntField(out, "ts_ns", record.ts_ns, &first, /*always=*/true);
  AppendStringField(out, "kind", record.kind, &first);
  AppendStringField(out, "unit", record.unit, &first);
  AppendStringField(out, "name", record.name, &first);
  if (record.variant != 0) {
    out += ",\"variant\":\"";
    out += std::to_string(record.variant);
    out += '"';
  }
  AppendIntField(out, "level", record.level, &first);
  AppendIntField(out, "cache_hit", record.cache_hit, &first);
  AppendStringField(out, "assumption", record.assumption, &first);
  AppendStringField(out, "assumed", record.assumed, &first);
  AppendStringField(out, "observed", record.observed, &first);
  AppendIntField(out, "validate_ns", record.validate_ns, &first);
  AppendIntField(out, "execute_ns", record.execute_ns, &first);
  AppendIntField(out, "generate_ns", record.generate_ns, &first);
  AppendIntField(out, "ops", record.ops, &first);
  AppendIntField(out, "bytes", record.bytes, &first);
  AppendIntField(out, "fused_regions", record.fused_regions, &first);
  AppendIntField(out, "fused_ops", record.fused_ops, &first);
  AppendStringField(out, "detail", record.detail, &first);
  out += '}';
  return out;
}

std::string Ledger::ToJsonl(std::size_t max_records) const {
  std::string out;
  for (const LedgerRecord& record : Snapshot(max_records)) {
    out += ToJsonLine(record);
    out += '\n';
  }
  return out;
}

bool Ledger::WriteJsonl(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    JANUS_LOG(kError) << "cannot open ledger output file '" << path << "'";
    return false;
  }
  file << ToJsonl();
  return file.good();
}

namespace {

// JANUS_LEDGER=<path>: enable the flight recorder for the whole process
// and dump the retained records as JSONL at exit, so any example or
// benchmark binary is attributable with no code changes (the JANUS_TRACE
// idiom).
struct LedgerEnvInit {
  LedgerEnvInit() {
    const char* path = std::getenv("JANUS_LEDGER");
    if (path == nullptr || path[0] == '\0') return;
    Ledger::Global();  // ensure the (leaked) ring outlives the handler
    Ledger::Enable();
    static std::string output_path;  // atexit handlers take no arguments
    output_path = path;
    std::atexit([] { Ledger::Global().WriteJsonl(output_path); });
  }
};
const LedgerEnvInit ledger_env_init;

}  // namespace
}  // namespace obs
}  // namespace janus
