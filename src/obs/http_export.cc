#include "obs/http_export.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <utility>

#include "common/logging.h"
#include "obs/ledger.h"
#include "obs/pprof_encode.h"
#include "obs/profile.h"

namespace janus {
namespace obs {

namespace {
std::atomic<bool> g_quit_requested{false};
}  // namespace

// ---------------------------------------------------------------------------
// HistogramSnapshot

void HistogramSnapshot::Accumulate(const Histogram& histogram) {
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    buckets[i] += histogram.BucketCount(i);
  }
  count += histogram.Count();
  sum += histogram.Sum();
}

void HistogramSnapshot::Accumulate(const HistogramSnapshot& other) {
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
  sum += other.sum;
}

// ---------------------------------------------------------------------------
// IntrospectionHub

IntrospectionHub& IntrospectionHub::Global() {
  // Leaked: the HTTP thread and atexit linger loop may consult the hub
  // during process teardown.
  static IntrospectionHub* hub = new IntrospectionHub();
  return *hub;
}

void IntrospectionHub::RegisterMetricsSource(const MetricsRegistry* registry) {
  if (registry == nullptr) return;
  const WriterMutexLock lock(mu_);
  if (std::find(registries_.begin(), registries_.end(), registry) ==
      registries_.end()) {
    registries_.push_back(registry);
  }
}

void IntrospectionHub::FoldRegistryLocked(const MetricsRegistry& registry) {
  for (const auto& [name, value] : registry.CounterValues()) {
    retired_counters_[name] += value;
  }
  for (const std::string& name : registry.HistogramNames()) {
    if (const Histogram* histogram = registry.FindHistogram(name)) {
      retired_histograms_[name].Accumulate(*histogram);
    }
  }
}

void IntrospectionHub::UnregisterMetricsSource(
    const MetricsRegistry* registry) {
  const WriterMutexLock lock(mu_);
  auto it = std::find(registries_.begin(), registries_.end(), registry);
  if (it == registries_.end()) return;
  // Retire rather than forget: a scrape racing (or following) engine
  // teardown still sees the source's final totals.
  FoldRegistryLocked(**it);
  registries_.erase(it);
}

int IntrospectionHub::RegisterStatusSource(
    std::string name, std::function<std::string()> provider) {
  const WriterMutexLock lock(mu_);
  const int id = next_status_id_++;
  status_sources_.push_back({id, std::move(name), std::move(provider)});
  return id;
}

void IntrospectionHub::UnregisterStatusSource(int id) {
  std::function<std::string()> provider;
  std::string name;
  {
    const WriterMutexLock lock(mu_);
    auto it = std::find_if(status_sources_.begin(), status_sources_.end(),
                           [id](const StatusSource& s) { return s.id == id; });
    if (it == status_sources_.end()) return;
    provider = std::move(it->provider);
    name = std::move(it->name);
    status_sources_.erase(it);
  }
  // Capture the final text outside the lock (providers may take their own
  // locks), then file it under a retired marker.
  std::string text;
  if (provider) text = provider();
  const WriterMutexLock lock(mu_);
  retired_status_.push_back("== " + name + " [retired] ==\n" + text);
}

std::map<std::string, std::int64_t> IntrospectionHub::MergedCounters() const {
  std::map<std::string, std::int64_t> merged;
  for (const auto& [name, value] : MetricsRegistry::Global().CounterValues()) {
    merged[name] += value;
  }
  const ReaderMutexLock lock(mu_);
  for (const MetricsRegistry* registry : registries_) {
    for (const auto& [name, value] : registry->CounterValues()) {
      merged[name] += value;
    }
  }
  for (const auto& [name, value] : retired_counters_) merged[name] += value;
  return merged;
}

std::map<std::string, HistogramSnapshot> IntrospectionHub::MergedHistograms()
    const {
  std::map<std::string, HistogramSnapshot> merged;
  const auto fold = [&merged](const MetricsRegistry& registry) {
    for (const std::string& name : registry.HistogramNames()) {
      if (const Histogram* histogram = registry.FindHistogram(name)) {
        merged[name].Accumulate(*histogram);
      }
    }
  };
  fold(MetricsRegistry::Global());
  const ReaderMutexLock lock(mu_);
  for (const MetricsRegistry* registry : registries_) fold(*registry);
  for (const auto& [name, snapshot] : retired_histograms_) {
    merged[name].Accumulate(snapshot);
  }
  return merged;
}

std::string IntrospectionHub::StatusText() const {
  // Providers are invoked under the reader lock: UnregisterStatusSource
  // takes mu_ exclusively, so once it returns no in-flight call here can
  // still reference the (possibly dying) engine behind the provider.
  const ReaderMutexLock lock(mu_);
  std::string out;
  for (const StatusSource& source : status_sources_) {
    out += "== " + source.name + " ==\n";
    if (source.provider) out += source.provider();
    if (!out.empty() && out.back() != '\n') out += '\n';
    out += '\n';
  }
  for (const std::string& text : retired_status_) {
    out += text;
    if (!out.empty() && out.back() != '\n') out += '\n';
    out += '\n';
  }
  if (out.empty()) out = "(no status sources registered)\n";
  return out;
}

void IntrospectionHub::ResetForTesting() {
  const WriterMutexLock lock(mu_);
  registries_.clear();
  status_sources_.clear();
  retired_counters_.clear();
  retired_histograms_.clear();
  retired_status_.clear();
}

// ---------------------------------------------------------------------------
// Prometheus text exposition

std::string PrometheusMetricName(std::string_view name) {
  std::string out = "janus_";
  for (const char c : name) {
    const bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += valid ? c : '_';
  }
  return out;
}

std::string PrometheusEscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

namespace {

void AppendHistogramExposition(std::string& out, const std::string& family,
                               const std::string& labels,
                               const HistogramSnapshot& snapshot) {
  // Prometheus buckets are cumulative; emit a line per non-empty log2
  // bucket (upper bound inclusive, which is exactly `le`), then +Inf.
  std::int64_t cumulative = 0;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    if (snapshot.buckets[i] == 0) continue;
    cumulative += snapshot.buckets[i];
    out += family + "_bucket{" + labels +
           (labels.empty() ? "" : ",") + "le=\"" +
           std::to_string(Histogram::BucketUpperBound(i)) + "\"} " +
           std::to_string(cumulative) + "\n";
  }
  out += family + "_bucket{" + labels + (labels.empty() ? "" : ",") +
         "le=\"+Inf\"} " + std::to_string(snapshot.count) + "\n";
  const std::string suffix = labels.empty() ? "" : "{" + labels + "}";
  out += family + "_sum" + suffix + " " + std::to_string(snapshot.sum) + "\n";
  out += family + "_count" + suffix + " " + std::to_string(snapshot.count) +
         "\n";
}

}  // namespace

std::string RenderPrometheusText() {
  IntrospectionHub& hub = IntrospectionHub::Global();
  std::string out;

  // Counters. Distinct registry names may sanitize to the same Prometheus
  // name ("cache.hits" / "cache_hits"); sum them under one series.
  std::map<std::string, std::int64_t> counters;
  for (const auto& [name, value] : hub.MergedCounters()) {
    counters[PrometheusMetricName(name)] += value;
  }
  Ledger& ledger = Ledger::Global();
  counters["janus_ledger_records_total"] += ledger.TotalRecorded();
  counters["janus_ledger_dropped_total"] += ledger.TotalDropped();
  for (const auto& [name, value] : counters) {
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(value) + "\n";
  }

  // Histograms. Per-op kernel timers (kernel.<op>) collapse into one
  // labeled family so an unbounded op vocabulary cannot explode the
  // exposition's family count.
  std::map<std::string, HistogramSnapshot> kernel_ops;
  std::map<std::string, HistogramSnapshot> families;
  for (const auto& [name, snapshot] : hub.MergedHistograms()) {
    constexpr std::string_view kKernelPrefix = "kernel.";
    if (name.size() > kKernelPrefix.size() &&
        std::string_view(name).substr(0, kKernelPrefix.size()) ==
            kKernelPrefix) {
      kernel_ops[name.substr(kKernelPrefix.size())].Accumulate(snapshot);
    } else {
      families[PrometheusMetricName(name)].Accumulate(snapshot);
    }
  }
  for (const auto& [family, snapshot] : families) {
    out += "# TYPE " + family + " histogram\n";
    AppendHistogramExposition(out, family, "", snapshot);
  }
  if (!kernel_ops.empty()) {
    out += "# TYPE janus_kernel_ns histogram\n";
    for (const auto& [op, snapshot] : kernel_ops) {
      const std::string labels =
          "op=\"" + PrometheusEscapeLabelValue(op) + "\"";
      AppendHistogramExposition(out, "janus_kernel_ns", labels, snapshot);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// HTTP server

HttpExportServer& HttpExportServer::Global() {
  // Leaked: the accept thread and atexit linger loop may outlive statics.
  static HttpExportServer* server = new HttpExportServer();
  return *server;
}

HttpExportServer::~HttpExportServer() { Stop(); }

bool HttpExportServer::QuitRequested() {
  return g_quit_requested.load(std::memory_order_relaxed);
}

void HttpExportServer::RequestQuit() {
  g_quit_requested.store(true, std::memory_order_relaxed);
}

HttpResponse HttpExportServer::HandlePath(std::string_view path) {
  std::string_view query;
  if (const std::size_t qmark = path.find('?');
      qmark != std::string_view::npos) {
    query = path.substr(qmark + 1);
    path = path.substr(0, qmark);
  }
  HttpResponse response;
  if (path == "/metrics") {
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = RenderPrometheusText();
    return response;
  }
  if (path == "/statusz") {
    response.body = IntrospectionHub::Global().StatusText();
    return response;
  }
  if (path == "/flightz") {
    std::size_t limit = 256;
    constexpr std::string_view kParam = "n=";
    if (const std::size_t pos = query.find(kParam);
        pos != std::string_view::npos &&
        (pos == 0 || query[pos - 1] == '&')) {
      const long long parsed =
          std::atoll(std::string(query.substr(pos + kParam.size())).c_str());
      if (parsed > 0) limit = static_cast<std::size_t>(parsed);
    }
    response.body = Ledger::Global().ToJsonl(limit);
    if (response.body.empty()) {
      response.body = Ledger::Enabled()
                          ? ""
                          : "(ledger disabled; set JANUS_LEDGER or call "
                            "Ledger::Enable())\n";
    }
    return response;
  }
  if (path == "/profilez") {
    // Source-attributed profiler: per-unit / per-source-line cost report.
    // ?format=json returns the machine-readable form.
    if (query.find("format=json") != std::string_view::npos) {
      response.content_type = "application/json";
      response.body = RenderProfileJson();
    } else {
      response.body = RenderProfileText();
    }
    return response;
  }
  if (path == "/pprof/profile") {
    // Gzipped pprof protobuf (go tool pprof / speedscope compatible). The
    // body is binary; ServeConnection frames it with Content-Length, so
    // embedded NULs are fine.
    response.content_type = "application/octet-stream";
    response.body = GzipCompress(SerializeCurrentProfileProto());
    return response;
  }
  if (path == "/healthz") {
    response.body = "ok\n";
    return response;
  }
  if (path == "/quitquitquit") {
    RequestQuit();
    response.body = "bye\n";
    return response;
  }
  if (path == "/" || path.empty()) {
    response.body =
        "janus introspection\n"
        "  /metrics   Prometheus text exposition\n"
        "  /statusz   engine status reports\n"
        "  /flightz   recent speculation-ledger records (JSONL, ?n=N)\n"
        "  /profilez  source-attributed profile (text; ?format=json)\n"
        "  /pprof/profile  gzipped pprof protobuf for `go tool pprof`\n"
        "  /healthz   liveness probe\n"
        "  /quitquitquit  release a lingering process\n";
    return response;
  }
  response.status = 404;
  response.body = "not found\n";
  return response;
}

bool HttpExportServer::Start(int port) {
  if (running_.load(std::memory_order_acquire)) return true;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    JANUS_LOG(kError) << "http_export: socket() failed: "
                      << std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only, never 0.0.0.0
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    JANUS_LOG(kError) << "http_export: cannot listen on 127.0.0.1:" << port
                      << ": " << std::strerror(errno);
    ::close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = port;
  }
  listen_fd_.store(fd, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  JANUS_LOG(kInfo) << "http_export: serving on http://127.0.0.1:" << port_
                   << " (/metrics /statusz /flightz /profilez /pprof/profile)";
  return true;
}

void HttpExportServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Unblock accept(); the loop observes running_ == false and exits. The
  // fd stays valid (and != -1) until the thread has joined, so the loop
  // never reads a clobbered descriptor.
  const int fd = listen_fd_.load(std::memory_order_acquire);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_.store(-1, std::memory_order_release);
}

void HttpExportServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    const int fd =
        ::accept(listen_fd_.load(std::memory_order_acquire), nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load(std::memory_order_acquire)) return;
      if (errno == EINTR) continue;
      return;
    }
    ServeConnection(fd);
    ::close(fd);
  }
}

void HttpExportServer::ServeConnection(int fd) {
  // Read until the request line is complete (first LF) — a client may
  // legally deliver "GET /metrics HTTP/1.1\r\n" across several segments.
  char buffer[4096];
  std::size_t total = 0;
  while (total < sizeof(buffer) - 1) {
    const ssize_t n =
        ::recv(fd, buffer + total, sizeof(buffer) - 1 - total, 0);
    if (n <= 0) break;
    total += static_cast<std::size_t>(n);
    if (std::string_view(buffer, total).find('\n') != std::string_view::npos) {
      break;
    }
  }
  if (total == 0) return;
  buffer[total] = '\0';
  // "GET <path> HTTP/1.x" — method then target; everything else ignored.
  std::string_view request(buffer, total);
  HttpResponse response;
  const std::size_t method_end = request.find(' ');
  if (method_end == std::string_view::npos) {
    response.status = 400;
    response.body = "bad request\n";
  } else {
    const std::size_t path_end = request.find_first_of(" \r\n", method_end + 1);
    const std::string_view target = request.substr(
        method_end + 1, path_end == std::string_view::npos
                            ? std::string_view::npos
                            : path_end - method_end - 1);
    response = HandlePath(target);
  }
  const char* reason = response.status == 200   ? "OK"
                       : response.status == 404 ? "Not Found"
                                                : "Bad Request";
  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     reason + "\r\nContent-Type: " + response.content_type +
                     "\r\nContent-Length: " +
                     std::to_string(response.body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  const auto send_all = [fd](std::string_view data) {
    while (!data.empty()) {
      const ssize_t sent = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
      if (sent <= 0) return;
      data.remove_prefix(static_cast<std::size_t>(sent));
    }
  };
  send_all(head);
  send_all(response.body);
}

namespace {

// JANUS_HTTP_PORT=<port>: start the introspection server at static-init
// time so any binary becomes scrape-able with no code changes.
// JANUS_HTTP_LINGER_MS=<ms>: after main returns, keep serving for up to
// <ms> (or until /quitquitquit) so scrapers can collect final metrics from
// short-lived batch binaries; the ledger/trace atexit dumps still run.
struct HttpEnvInit {
  HttpEnvInit() {
    const char* port_env = std::getenv("JANUS_HTTP_PORT");
    if (port_env == nullptr || *port_env == '\0') return;
    char* end = nullptr;
    const long parsed = std::strtol(port_env, &end, 10);
    if (end == port_env || parsed < 0 || parsed > 65535) {
      JANUS_LOG(kError) << "http_export: invalid JANUS_HTTP_PORT '"
                        << port_env << "'";
      return;
    }
    if (!HttpExportServer::Global().Start(static_cast<int>(parsed))) return;
    static long linger_ms = 0;
    if (const char* linger_env = std::getenv("JANUS_HTTP_LINGER_MS");
        linger_env != nullptr && *linger_env != '\0') {
      linger_ms = std::strtol(linger_env, nullptr, 10);
    }
    std::atexit([] {
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(linger_ms);
      while (linger_ms > 0 && !HttpExportServer::QuitRequested() &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
      HttpExportServer::Global().Stop();
    });
  }
};
const HttpEnvInit http_env_init;

}  // namespace
}  // namespace obs
}  // namespace janus
