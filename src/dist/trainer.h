// Synchronous data-parallel training driver (the Horovod integration of
// §5, with an in-process transport): K workers hold identical model
// replicas, each runs the same MiniPy training step on its own shard, and a
// ring allreduce averages the replicas' parameters after every step — for
// SGD this is exactly equivalent to averaging gradients before the update.
#ifndef JANUS_DIST_TRAINER_H_
#define JANUS_DIST_TRAINER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"

namespace janus::dist {

class DataParallelTrainer {
 public:
  // Every worker gets its own interpreter, engine, and variable store,
  // seeded identically so replicas initialise in sync. The global
  // `worker_rank` (int) and `num_workers` are predefined for sharding.
  DataParallelTrainer(int num_workers, const EngineOptions& engine_options,
                      std::uint64_t seed);
  ~DataParallelTrainer();
  DataParallelTrainer(const DataParallelTrainer&) = delete;
  DataParallelTrainer& operator=(const DataParallelTrainer&) = delete;

  // Runs setup source on every worker (model + data definitions).
  void RunOnAll(const std::string& source);

  // One synchronous iteration: every worker executes `iteration_source`
  // concurrently, then all float32 parameters are ring-allreduced to their
  // mean. Returns the mean of global `loss` across workers if defined.
  double Step(const std::string& iteration_source);

  int num_workers() const { return static_cast<int>(workers_.size()); }
  minipy::Interpreter& interpreter(int worker);
  JanusEngine& engine(int worker);
  VariableStore& variables(int worker);

  // Checks replicas hold bit-identical parameters (post-allreduce sanity).
  bool ReplicasInSync() const;

 private:
  struct Worker;
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace janus::dist

#endif  // JANUS_DIST_TRAINER_H_
