#include "dist/allreduce.h"

#include <barrier>
#include <thread>

#include "common/error.h"

namespace janus::dist {

void RingAllReduceMean(std::vector<std::span<float>> buffers) {
  const int k = static_cast<int>(buffers.size());
  if (k <= 1) return;
  const std::size_t n = buffers[0].size();
  for (const auto& buffer : buffers) {
    JANUS_EXPECTS(buffer.size() == n);
  }
  if (n == 0) return;

  // Chunk c of participant r: elements [chunk_begin(c), chunk_begin(c+1)).
  const auto chunk_begin = [&](int c) {
    return n * static_cast<std::size_t>(c) / static_cast<std::size_t>(k);
  };

  std::barrier barrier(k);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(k));
  for (int rank = 0; rank < k; ++rank) {
    threads.emplace_back([&, rank] {
      // Reduce-scatter: after step s, participant r owns the partial sum of
      // chunk (r - s) mod k.
      for (int step = 0; step < k - 1; ++step) {
        const int src = (rank - step - 1 + 2 * k) % k;  // neighbour's chunk
        const std::size_t lo = chunk_begin(src);
        const std::size_t hi = chunk_begin(src + 1);
        const int prev = (rank - 1 + k) % k;
        // Receive the neighbour's accumulated chunk and add ours into it —
        // equivalently, add the neighbour's into ours for that chunk range.
        barrier.arrive_and_wait();  // neighbour's step-(s-1) data is ready
        for (std::size_t i = lo; i < hi; ++i) {
          buffers[static_cast<std::size_t>(rank)][i] +=
              buffers[static_cast<std::size_t>(prev)][i];
        }
        barrier.arrive_and_wait();  // writes visible before next step reads
      }
      // After reduce-scatter, participant r holds the FULL sum for chunk
      // (r + 1) mod k. Scale it to the mean.
      {
        const int owned = (rank + 1) % k;
        const std::size_t lo = chunk_begin(owned);
        const std::size_t hi = chunk_begin(owned + 1);
        const float scale = 1.0f / static_cast<float>(k);
        for (std::size_t i = lo; i < hi; ++i) {
          buffers[static_cast<std::size_t>(rank)][i] *= scale;
        }
      }
      barrier.arrive_and_wait();
      // Allgather: propagate finished chunks around the ring.
      for (int step = 0; step < k - 1; ++step) {
        const int src_chunk = (rank - step + 2 * k) % k;
        const std::size_t lo = chunk_begin(src_chunk);
        const std::size_t hi = chunk_begin(src_chunk + 1);
        const int prev = (rank - 1 + k) % k;
        barrier.arrive_and_wait();
        for (std::size_t i = lo; i < hi; ++i) {
          buffers[static_cast<std::size_t>(rank)][i] =
              buffers[static_cast<std::size_t>(prev)][i];
        }
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& thread : threads) thread.join();
}

void AllReduceMeanTensors(std::vector<Tensor*> replicas) {
  JANUS_EXPECTS(!replicas.empty());
  std::vector<std::span<float>> buffers;
  buffers.reserve(replicas.size());
  for (Tensor* tensor : replicas) {
    JANUS_EXPECTS(tensor != nullptr);
    JANUS_EXPECTS(tensor->dtype() == DType::kFloat32);
    JANUS_EXPECTS(tensor->shape() == replicas[0]->shape());
    buffers.push_back(tensor->mutable_data<float>());
  }
  RingAllReduceMean(std::move(buffers));
}

}  // namespace janus::dist
