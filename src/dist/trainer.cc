#include "dist/trainer.h"

#include <thread>

#include "dist/allreduce.h"
#include "frontend/builtins.h"

namespace janus::dist {

struct DataParallelTrainer::Worker {
  Worker(int rank, int world, const EngineOptions& options,
         std::uint64_t seed)
      : rng(seed), interp(&variables, &rng), engine(&interp, options) {
    minipy::InstallBuiltins(interp);
    engine.Attach();
    interp.SetGlobal("worker_rank", static_cast<std::int64_t>(rank));
    interp.SetGlobal("num_workers", static_cast<std::int64_t>(world));
  }
  VariableStore variables;
  Rng rng;
  minipy::Interpreter interp;
  JanusEngine engine;
};

DataParallelTrainer::DataParallelTrainer(int num_workers,
                                         const EngineOptions& engine_options,
                                         std::uint64_t seed) {
  JANUS_EXPECTS(num_workers >= 1);
  workers_.reserve(static_cast<std::size_t>(num_workers));
  for (int rank = 0; rank < num_workers; ++rank) {
    workers_.push_back(std::make_unique<Worker>(rank, num_workers,
                                                engine_options, seed));
  }
}

DataParallelTrainer::~DataParallelTrainer() = default;

void DataParallelTrainer::RunOnAll(const std::string& source) {
  for (auto& worker : workers_) worker->interp.Run(source);
}

double DataParallelTrainer::Step(const std::string& iteration_source) {
  // Compute phase: workers run concurrently.
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(workers_.size());
  threads.reserve(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    threads.emplace_back([this, i, &iteration_source, &errors] {
      try {
        workers_[i]->interp.Run(iteration_source);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (const auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }

  // Communication phase: ring-allreduce every float parameter to the mean.
  if (workers_.size() > 1) {
    for (const std::string& name : workers_[0]->variables.Names()) {
      std::vector<Tensor> replicas;
      replicas.reserve(workers_.size());
      bool eligible = true;
      for (auto& worker : workers_) {
        if (!worker->variables.Contains(name)) {
          eligible = false;
          break;
        }
        Tensor t = worker->variables.Read(name);
        if (t.dtype() != DType::kFloat32) {
          eligible = false;
          break;
        }
        replicas.push_back(std::move(t));
      }
      if (!eligible) continue;
      std::vector<Tensor*> pointers;
      for (Tensor& t : replicas) pointers.push_back(&t);
      AllReduceMeanTensors(pointers);
      for (std::size_t i = 0; i < workers_.size(); ++i) {
        workers_[i]->variables.Assign(name, replicas[i]);
      }
    }
  }

  // Mean loss across workers, if the program exposes one.
  double total = 0.0;
  int counted = 0;
  for (auto& worker : workers_) {
    try {
      const minipy::Value v = worker->interp.GetGlobal("loss");
      if (const auto* t = std::get_if<Tensor>(&v)) {
        total += t->ElementAsDouble(0);
        ++counted;
      } else if (const auto* d = std::get_if<double>(&v)) {
        total += *d;
        ++counted;
      }
    } catch (const Error&) {
      // No loss global: fine.
    }
  }
  return counted > 0 ? total / counted : 0.0;
}

minipy::Interpreter& DataParallelTrainer::interpreter(int worker) {
  return workers_.at(static_cast<std::size_t>(worker))->interp;
}
JanusEngine& DataParallelTrainer::engine(int worker) {
  return workers_.at(static_cast<std::size_t>(worker))->engine;
}
VariableStore& DataParallelTrainer::variables(int worker) {
  return workers_.at(static_cast<std::size_t>(worker))->variables;
}

bool DataParallelTrainer::ReplicasInSync() const {
  for (const std::string& name : workers_[0]->variables.Names()) {
    const Tensor& reference = workers_[0]->variables.Read(name);
    for (std::size_t i = 1; i < workers_.size(); ++i) {
      if (!workers_[i]->variables.Contains(name)) return false;
      if (!workers_[i]->variables.Read(name).ElementsEqual(reference)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace janus::dist
