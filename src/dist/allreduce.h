// Ring allreduce over in-process participants — the Horovod-analog
// collective (§5 integrates Horovod's MPI allreduce as a graph op; here the
// transport is shared memory, the algorithm is the same ring).
//
// K participants each contribute an equal-length float buffer; after the
// collective every buffer holds the element-wise mean. The implementation
// runs the classic 2(K-1)-step ring: K-1 reduce-scatter steps then K-1
// allgather steps, with per-step barriers (each participant on its own
// thread, chunks moving between neighbours).
#ifndef JANUS_DIST_ALLREDUCE_H_
#define JANUS_DIST_ALLREDUCE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace janus::dist {

// Averages `buffers[i]` (all the same length) across participants in place.
// Runs each participant on its own thread and moves data chunk-by-chunk
// around the ring.
void RingAllReduceMean(std::vector<std::span<float>> buffers);

// Convenience: averages the same-named variables of several tensors
// in place (tensors must share dtype float32 and shape).
void AllReduceMeanTensors(std::vector<Tensor*> replicas);

}  // namespace janus::dist

#endif  // JANUS_DIST_ALLREDUCE_H_
