// Tests for the compile-once ExecutionPlan layer: plan reuse must be
// bit-identical to fresh planning for DAG, dynamic, and nested While/Invoke
// graphs, and the plan cache must report builds exactly once per
// (graph version, fetch set) with every later run a hit.
#include "runtime/plan.h"

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.h"
#include "core/engine.h"
#include "frontend/builtins.h"
#include "runtime/executor.h"
#include "tensor/ops.h"

namespace janus {
namespace {

void ExpectBitIdentical(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.dtype(), b.dtype());
  ASSERT_EQ(a.shape().dims(), b.shape().dims());
  const std::size_t bytes =
      static_cast<std::size_t>(a.num_elements()) * DTypeSize(a.dtype());
  const void* pa = nullptr;
  const void* pb = nullptr;
  switch (a.dtype()) {
    case DType::kFloat32:
      pa = a.data<float>().data();
      pb = b.data<float>().data();
      break;
    case DType::kInt64:
      pa = a.data<std::int64_t>().data();
      pb = b.data<std::int64_t>().data();
      break;
    case DType::kBool:
      pa = a.data<bool>().data();
      pb = b.data<bool>().data();
      break;
  }
  EXPECT_EQ(std::memcmp(pa, pb, bytes), 0);
}

class PlanTest : public ::testing::Test {
 protected:
  Executor MakeExecutor() {
    return Executor(&library_, &variables_, nullptr, &rng_);
  }

  FunctionLibrary library_;
  VariableStore variables_;
  Rng rng_{42};
};

// i = 0; while (i < n) i = i + 1 — exercises the dynamic (tagged-token)
// strategy with Enter/Merge/Switch/NextIteration/Exit.
struct LoopGraph {
  Graph g;
  Node* exit;
};

LoopGraph BuildCountingLoop() {
  LoopGraph l;
  const NodeOutput zero = l.g.Constant(Tensor::ScalarInt(0));
  const NodeOutput n = l.g.Placeholder("n", DType::kInt64);
  Node* enter_i =
      l.g.AddNode("Enter", {zero}, {{"frame", std::string("loop")}});
  Node* enter_n = l.g.AddNode(
      "Enter", {n}, {{"frame", std::string("loop")}, {"is_constant", true}});
  Node* merge = l.g.AddNode("Merge", {{enter_i, 0}, {enter_i, 0}}, {}, 2);
  Node* less = l.g.AddNode("Less", {{merge, 0}, {enter_n, 0}});
  Node* sw = l.g.AddNode("Switch", {{merge, 0}, {less, 0}}, {}, 2);
  Node* one = l.g.AddNode("Const", {}, {{"value", Tensor::ScalarInt(1)}});
  Node* inc = l.g.AddNode("Add", {{sw, 1}, {one, 0}});
  Node* next = l.g.AddNode("NextIteration", {{inc, 0}});
  merge->set_input(1, {next, 0});
  l.exit = l.g.AddNode("Exit", {{sw, 0}});
  return l;
}

TEST_F(PlanTest, DagStrategyChosenForAcyclicGraph) {
  Graph g;
  const NodeOutput a = g.Constant(Tensor::Scalar(2));
  Node* sq = g.AddNode("Square", {a});
  const std::vector<NodeOutput> fetches{{sq, 0}};
  const auto plan = ExecutionPlan::Build(g, fetches);
  EXPECT_EQ(plan->strategy(), ExecutionPlan::Strategy::kDag);
  EXPECT_EQ(plan->graph_version(), g.version());
}

TEST_F(PlanTest, DynamicStrategyChosenForControlFlowGraph) {
  LoopGraph l = BuildCountingLoop();
  const auto plan = ExecutionPlan::Build(l.g, std::vector<NodeOutput>{{l.exit, 0}});
  EXPECT_EQ(plan->strategy(), ExecutionPlan::Strategy::kDynamic);
}

TEST_F(PlanTest, ReusedDagPlanMatchesFreshPlan) {
  Graph g;
  const NodeOutput x = g.Placeholder("x", DType::kFloat32);
  Node* left = g.AddNode("Square", {x});
  Node* right = g.AddNode("Neg", {x});
  Node* join = g.AddNode("Add", {{left, 0}, {right, 0}});
  const std::vector<NodeOutput> fetches{{join, 0}};
  const std::map<std::string, Tensor> feeds{
      {"x", Tensor::FromVector({1.5f, -2.25f}, Shape{2})}};

  Executor executor = MakeExecutor();
  const auto cached = GetOrBuildPlan(g, fetches);
  // Same shared plan dispatched many times vs. a from-scratch plan each run.
  for (int i = 0; i < 3; ++i) {
    const auto fresh = ExecutionPlan::Build(g, fetches);
    const auto a = executor.Run(*cached, feeds);
    const auto b = executor.Run(*fresh, feeds);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t j = 0; j < a.size(); ++j) ExpectBitIdentical(a[j], b[j]);
  }
}

TEST_F(PlanTest, ReusedDynamicPlanMatchesFreshPlan) {
  LoopGraph l = BuildCountingLoop();
  const std::vector<NodeOutput> fetches{{l.exit, 0}};
  Executor executor = MakeExecutor();
  const auto cached = GetOrBuildPlan(l.g, fetches);
  for (const std::int64_t n : {0, 1, 7, 200}) {
    const std::map<std::string, Tensor> feeds{{"n", Tensor::ScalarInt(n)}};
    const auto fresh = ExecutionPlan::Build(l.g, fetches);
    const auto a = executor.Run(*cached, feeds);
    const auto b = executor.Run(*fresh, feeds);
    ASSERT_EQ(a.size(), 1u);
    EXPECT_EQ(a[0].ScalarIntValue(), n);
    ExpectBitIdentical(a[0], b[0]);
  }
}

TEST_F(PlanTest, NestedWhileAndInvokeReusePerFunctionPlans) {
  // carried: (i, acc); captures: (n); body doubles acc via a nested Invoke.
  auto dbl = std::make_unique<GraphFunction>();
  dbl->name = "dbl";
  {
    Node* p = dbl->graph.AddNode("Param", {}, {{"index", std::int64_t{0}}});
    Node* d = dbl->graph.AddNode("Add", {{p, 0}, {p, 0}});
    dbl->parameters = {p};
    dbl->results = {{d, 0}};
  }
  library_.Register(std::move(dbl));

  auto cond = std::make_unique<GraphFunction>();
  cond->name = "w_cond";
  {
    Graph& cg = cond->graph;
    Node* i = cg.AddNode("Param", {}, {{"index", std::int64_t{0}}});
    Node* acc = cg.AddNode("Param", {}, {{"index", std::int64_t{1}}});
    Node* n = cg.AddNode("Param", {}, {{"index", std::int64_t{2}}});
    (void)acc;
    Node* lt = cg.AddNode("Less", {{i, 0}, {n, 0}});
    cond->parameters = {i, acc, n};
    cond->results = {{lt, 0}};
  }
  library_.Register(std::move(cond));

  auto body = std::make_unique<GraphFunction>();
  body->name = "w_body";
  {
    Graph& bg = body->graph;
    Node* i = bg.AddNode("Param", {}, {{"index", std::int64_t{0}}});
    Node* acc = bg.AddNode("Param", {}, {{"index", std::int64_t{1}}});
    Node* n = bg.AddNode("Param", {}, {{"index", std::int64_t{2}}});
    (void)n;
    Node* one = bg.AddNode("Const", {}, {{"value", Tensor::ScalarInt(1)}});
    Node* ip1 = bg.AddNode("Add", {{i, 0}, {one, 0}});
    Node* acc2 = bg.AddNode("Invoke", {{acc, 0}},
                            {{"function", std::string("dbl")}});
    body->parameters = {i, acc, n};
    body->results = {{ip1, 0}, {acc2, 0}};
  }
  library_.Register(std::move(body));

  Graph g;
  const NodeOutput i0 = g.Constant(Tensor::ScalarInt(0));
  const NodeOutput acc0 = g.Constant(Tensor::Scalar(1));
  const NodeOutput n = g.Placeholder("n", DType::kInt64);
  Node* loop = g.AddNode("While", {i0, acc0, n},
                         {{"cond_fn", std::string("w_cond")},
                          {"body_fn", std::string("w_body")},
                          {"num_carried", std::int64_t{2}}},
                         2);
  const std::vector<NodeOutput> fetches{{loop, 1}};
  const std::map<std::string, Tensor> feeds{{"n", Tensor::ScalarInt(10)}};

  Executor executor = MakeExecutor();
  const auto cached = GetOrBuildPlan(g, fetches);

  // First run populates each function graph's plan cache; later runs must
  // hit those cached plans without building anything new.
  RunMetrics first;
  const auto a = executor.Run(*cached, feeds, &first);
  EXPECT_FLOAT_EQ(a[0].ScalarValue(), 1024.0f);
  EXPECT_GT(first.plan_builds, 0);  // cond/body/dbl planned once, lazily

  RunMetrics second;
  const auto b = executor.Run(*cached, feeds, &second);
  EXPECT_EQ(second.plan_builds, 0);
  EXPECT_GT(second.plan_cache_hits, 0);
  ExpectBitIdentical(a[0], b[0]);

  const auto fresh = ExecutionPlan::Build(g, fetches);
  const auto c = executor.Run(*fresh, feeds);
  ExpectBitIdentical(a[0], c[0]);
}

TEST_F(PlanTest, RunMetricsCountBuildsOnceThenHits) {
  Graph g;
  const NodeOutput a = g.Constant(Tensor::Scalar(3));
  Node* sq = g.AddNode("Square", {a});
  const std::vector<NodeOutput> fetches{{sq, 0}};
  const std::map<std::string, Tensor> no_feeds;

  Executor executor = MakeExecutor();
  RunMetrics first;
  (void)executor.Run(g, no_feeds, fetches, &first);
  EXPECT_EQ(first.plan_builds, 1);
  EXPECT_EQ(first.plan_cache_hits, 0);

  for (int i = 0; i < 3; ++i) {
    RunMetrics again;
    (void)executor.Run(g, no_feeds, fetches, &again);
    EXPECT_EQ(again.plan_builds, 0);
    EXPECT_EQ(again.plan_cache_hits, 1);
  }
}

TEST_F(PlanTest, GraphMutationInvalidatesCachedPlan) {
  Graph g;
  const NodeOutput a = g.Constant(Tensor::Scalar(2));
  Node* sq = g.AddNode("Square", {a});
  const std::vector<NodeOutput> fetches{{sq, 0}};
  const std::map<std::string, Tensor> no_feeds;

  Executor executor = MakeExecutor();
  RunMetrics before;
  const auto out1 = executor.Run(g, no_feeds, fetches, &before);
  EXPECT_FLOAT_EQ(out1[0].ScalarValue(), 4.0f);
  EXPECT_EQ(before.plan_builds, 1);

  // Structural change bumps the graph version: the stale plan must not be
  // reused (it predates the new node).
  Node* neg = g.AddNode("Neg", {{sq, 0}});
  RunMetrics after;
  const auto out2 =
      executor.Run(g, no_feeds, std::vector<NodeOutput>{{neg, 0}}, &after);
  EXPECT_FLOAT_EQ(out2[0].ScalarValue(), -4.0f);
  EXPECT_EQ(after.plan_builds, 1);
  EXPECT_EQ(after.plan_cache_hits, 0);
}

TEST_F(PlanTest, EngineRunsPlanBuiltAtGenerationTime) {
  // End-to-end: after the engine generates a graph, its plan is prebuilt;
  // every subsequent cached-graph execution is hits-only.
  VariableStore variables;
  Rng rng(1);
  minipy::Interpreter interp(&variables, &rng);
  minipy::InstallBuiltins(interp);
  JanusEngine engine(&interp, EngineOptions{});
  engine.Attach();
  interp.Run(R"(
w = variable('w', constant([[0.5]]))
x = constant([[1.0], [2.0]])
def fn():
    return reduce_mean(matmul(x, w))
for i in range(6):
    optimize(fn, 0.01)
)");
  ASSERT_GT(engine.stats().graph_generations, 0);
  const std::int64_t builds_after_generation = engine.stats().plan_builds;
  const std::int64_t hits_before = engine.stats().plan_cache_hits;
  const std::int64_t graph_runs_before = engine.stats().graph_executions;
  EXPECT_GT(builds_after_generation, 0);

  for (int i = 0; i < 5; ++i) interp.Run("optimize(fn, 0.01)\n");

  EXPECT_EQ(engine.stats().graph_executions, graph_runs_before + 5);
  // The compile-once guarantee: zero plan construction on the hot path.
  EXPECT_EQ(engine.stats().plan_builds, builds_after_generation);
  EXPECT_GE(engine.stats().plan_cache_hits, hits_before + 5);
}

}  // namespace
}  // namespace janus
