// Tests for the plan/unit verifier (src/verify): clean plans pass, every
// catalogued seeded corruption is diagnosed with its named invariant plus a
// node attribution, the unit-level checks (captures, dtype, ladder
// consistency) catch hand-built violations with distinct diagnostics, and
// the auto-run hook rejects bad plans only when verification is enabled.
#include "verify/plan_verifier.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/error.h"
#include "core/compiled_graph.h"
#include "runtime/fusion.h"
#include "verify/corruption.h"
#include "verify/unit_verifier.h"

namespace janus {
namespace verify {
namespace {

// A built (graph, plan) pair; the graph must outlive the plan. Node
// pointers survive the Graph move (nodes are heap-allocated).
struct Built {
  Graph g;
  std::vector<NodeOutput> fetches;
  std::shared_ptr<const ExecutionPlan> plan;
};

// Diamond DAG without fusable chains: x -> {Square, Transpose} -> MatMul.
// Built with fusion off so the corruption tests see plain kernel nodes.
Built BuildPlainDag() {
  Built b;
  const NodeOutput x = b.g.Placeholder("x", DType::kFloat32);
  Node* sq = b.g.AddNode("Square", {x});
  Node* tr = b.g.AddNode("Transpose", {x});
  Node* mm = b.g.AddNode("MatMul", {{sq, 0}, {tr, 0}});
  b.fetches = {{mm, 0}};
  b.plan = ExecutionPlan::Build(b.g, b.fetches,
                                PlanOptions{.enable_fusion = false});
  return b;
}

// Six-Add elementwise chain that fuses into one region (fusion_test.cc),
// followed by a non-fusable consumer so the plan keeps a kernel node
// outside the region (the out-of-region rewiring corruption needs one).
Built BuildFusedDag() {
  Built b;
  const NodeOutput x = b.g.Placeholder("x", DType::kFloat32);
  const NodeOutput one = b.g.Constant(Tensor::Full(Shape{8, 8}, 1.0f));
  NodeOutput v = x;
  for (int i = 0; i < 6; ++i) v = {b.g.AddNode("Add", {v, one}), 0};
  Node* tr = b.g.AddNode("Transpose", {v});
  b.fetches = {{tr, 0}};
  b.plan = ExecutionPlan::Build(b.g, b.fetches,
                                PlanOptions{.enable_fusion = true});
  return b;
}

// i = 0; while (i < n) i = i + 1 — the dynamic (tagged-token) strategy.
Built BuildDynLoop() {
  Built b;
  const NodeOutput zero = b.g.Constant(Tensor::ScalarInt(0));
  const NodeOutput n = b.g.Placeholder("n", DType::kInt64);
  Node* enter_i =
      b.g.AddNode("Enter", {zero}, {{"frame", std::string("loop")}});
  Node* enter_n = b.g.AddNode(
      "Enter", {n}, {{"frame", std::string("loop")}, {"is_constant", true}});
  Node* merge = b.g.AddNode("Merge", {{enter_i, 0}, {enter_i, 0}}, {}, 2);
  Node* less = b.g.AddNode("Less", {{merge, 0}, {enter_n, 0}});
  Node* sw = b.g.AddNode("Switch", {{merge, 0}, {less, 0}}, {}, 2);
  Node* one = b.g.AddNode("Const", {}, {{"value", Tensor::ScalarInt(1)}});
  Node* inc = b.g.AddNode("Add", {{sw, 1}, {one, 0}});
  Node* next = b.g.AddNode("NextIteration", {{inc, 0}});
  merge->set_input(1, {next, 0});
  Node* exit = b.g.AddNode("Exit", {{sw, 0}});
  b.fetches = {{exit, 0}};
  b.plan = ExecutionPlan::Build(b.g, b.fetches);
  return b;
}

bool HasInvariant(const Report& report, const std::string& invariant) {
  return std::any_of(report.issues.begin(), report.issues.end(),
                     [&invariant](const Issue& issue) {
                       return issue.invariant == invariant;
                     });
}

// Applies every applicable corruption from `catalog` against a fresh build
// from `make`, asserting each is diagnosed with its expected invariant and
// that every reported issue carries a node attribution. Returns the names
// of the corruptions that applied.
std::set<std::string> RunCatalog(const std::vector<Corruption>& catalog,
                                 Built (*make)()) {
  std::set<std::string> applied;
  for (const Corruption& corruption : catalog) {
    Built b = make();
    const Report baseline = VerifyPlan(b.g, *b.plan);
    EXPECT_TRUE(baseline.ok())
        << "baseline not clean for " << corruption.name << ":\n"
        << baseline.ToString();
    if (!baseline.ok()) continue;
    PlanCorruptor corruptor(&b.g, b.plan.get());
    if (!corruption.apply(corruptor)) continue;
    applied.insert(corruption.name);
    const Report report = VerifyPlan(b.g, *b.plan);
    EXPECT_FALSE(report.ok())
        << corruption.name << " was not detected at all";
    EXPECT_TRUE(HasInvariant(report, corruption.expected_invariant))
        << corruption.name << " expected invariant "
        << corruption.expected_invariant << " but got:\n"
        << report.ToString();
    for (const Issue& issue : report.issues) {
      EXPECT_FALSE(issue.node.empty())
          << corruption.name << ": issue without node attribution";
    }
  }
  return applied;
}

// ---- clean plans ----

TEST(VerifyPlanTest, CleanPlainDagPasses) {
  Built b = BuildPlainDag();
  const Report report = VerifyPlan(b.g, *b.plan);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_GT(report.checks, 0);
}

TEST(VerifyPlanTest, CleanFusedDagPasses) {
  Built b = BuildFusedDag();
  ASSERT_EQ(b.plan->fused_regions().size(), 1u);
  const Report report = VerifyPlan(b.g, *b.plan);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(VerifyPlanTest, CleanDynPlanPasses) {
  Built b = BuildDynLoop();
  ASSERT_EQ(b.plan->strategy(), ExecutionPlan::Strategy::kDynamic);
  const Report report = VerifyPlan(b.g, *b.plan);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// ---- seeded corruption catalogs ----

TEST(VerifyPlanTest, PlainDagCorruptionsCaught) {
  const std::set<std::string> applied =
      RunCatalog(DagCorruptions(), &BuildPlainDag);
  // Everything except the fusion-specific entries applies to a plain DAG.
  EXPECT_GE(applied.size(), 15u);
}

TEST(VerifyPlanTest, FusedDagCorruptionsCaught) {
  const std::set<std::string> applied =
      RunCatalog(DagCorruptions(), &BuildFusedDag);
  // The fused plan additionally exercises the fusion.* entries.
  EXPECT_TRUE(applied.count("fusion-null-plan"));
  EXPECT_TRUE(applied.count("fusion-drop-root-member"));
  EXPECT_TRUE(applied.count("fusion-out-of-region-consumer"));
  EXPECT_TRUE(applied.count("fusion-interior-fetched"));
  EXPECT_TRUE(applied.count("fusion-interior-control"));
}

TEST(VerifyPlanTest, DynCorruptionsCaught) {
  const std::set<std::string> applied =
      RunCatalog(DynCorruptions(), &BuildDynLoop);
  EXPECT_GE(applied.size(), 10u);
}

TEST(VerifyPlanTest, AtLeastTwentyDistinctCorruptionsCaught) {
  std::set<std::string> all;
  for (const std::string& name : RunCatalog(DagCorruptions(),
                                            &BuildPlainDag)) {
    all.insert(name);
  }
  for (const std::string& name : RunCatalog(DagCorruptions(),
                                            &BuildFusedDag)) {
    all.insert(name);
  }
  for (const std::string& name : RunCatalog(DynCorruptions(),
                                            &BuildDynLoop)) {
    all.insert(name);
  }
  EXPECT_GE(all.size(), 20u) << "only " << all.size()
                             << " distinct corruptions applied";
}

// The ISSUE's named negative cases must each map to a distinct diagnostic.
TEST(VerifyPlanTest, NamedNegativeCasesHaveDistinctDiagnostics) {
  const std::vector<std::pair<std::string, Built (*)()>> cases = {
      {"dag-back-edge", &BuildPlainDag},           // cycle injection
      {"dag-fetch-dropped-remap", &BuildPlainDag}, // dropped fetch remap
      {"liveness-undercount", &BuildPlainDag},
      {"fusion-out-of-region-consumer", &BuildFusedDag},
  };
  std::set<std::string> invariants;
  for (const auto& [name, make] : cases) {
    const std::vector<Corruption> catalog = DagCorruptions();
    const auto it = std::find_if(
        catalog.begin(), catalog.end(),
        [&name](const Corruption& c) { return c.name == name; });
    ASSERT_NE(it, catalog.end()) << name;
    Built b = make();
    PlanCorruptor corruptor(&b.g, b.plan.get());
    ASSERT_TRUE(it->apply(corruptor)) << name << " did not apply";
    const Report report = VerifyPlan(b.g, *b.plan);
    EXPECT_TRUE(HasInvariant(report, it->expected_invariant))
        << name << ":\n" << report.ToString();
    invariants.insert(it->expected_invariant);
  }
  // Four cases, four different invariants (dtype mismatch is the fifth,
  // covered at the unit layer below).
  EXPECT_EQ(invariants.size(), cases.size());
}

// ---- unit-level checks (janus_verify_unit) ----

// A minimal, valid compiled unit: y = Square(x) with one tensor capture.
CompiledGraph MakeCleanUnit() {
  CompiledGraph unit;
  const NodeOutput x = unit.graph.Placeholder("x", DType::kFloat32);
  Node* sq = unit.graph.AddNode("Square", {x});
  unit.fetches = {{sq, 0}};
  CaptureSpec capture;
  capture.placeholder_name = "x";
  capture.kind = ObservedKind::kTensor;
  capture.dtype = DType::kFloat32;
  capture.shape = ShapeAssumption::Unknown();
  unit.captures.push_back(capture);
  unit.despecialization_level = 0;
  unit.BuildPlans(false);
  return unit;
}

TEST(VerifyUnitTest, CleanUnitPasses) {
  const CompiledGraph unit = MakeCleanUnit();
  const Report report = VerifyCompiledUnit(unit);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(VerifyUnitTest, CaptureDtypeMismatchCaught) {
  CompiledGraph unit = MakeCleanUnit();
  unit.captures[0].dtype = DType::kInt64;  // placeholder attr says float32
  const Report report = VerifyCompiledUnit(unit);
  EXPECT_TRUE(HasInvariant(report, "unit.capture_dtype"))
      << report.ToString();
}

TEST(VerifyUnitTest, MissingCapturePlaceholderCaught) {
  CompiledGraph unit = MakeCleanUnit();
  unit.captures[0].placeholder_name = "not_a_node";
  const Report report = VerifyCompiledUnit(unit);
  EXPECT_TRUE(HasInvariant(report, "unit.capture_placeholder"))
      << report.ToString();
}

TEST(VerifyUnitTest, ShapeAssumptionInconsistentWithLadderCaught) {
  // A level-2 (DropShapes) unit must not pin a shape assumption.
  CompiledGraph unit = MakeCleanUnit();
  unit.despecialization_level = 2;
  unit.captures[0].shape = ShapeAssumption::Exact(Shape{4, 4});
  const Report report = VerifyCompiledUnit(unit);
  EXPECT_TRUE(HasInvariant(report, "unit.shape_level"))
      << report.ToString();
}

TEST(VerifyUnitTest, LadderLevelOutOfRangeCaught) {
  CompiledGraph unit = MakeCleanUnit();
  unit.despecialization_level = 7;
  const Report report = VerifyCompiledUnit(unit);
  EXPECT_TRUE(HasInvariant(report, "unit.ladder_level"))
      << report.ToString();
}

TEST(VerifyUnitTest, MissingMainPlanCaught) {
  CompiledGraph unit = MakeCleanUnit();
  unit.plan = nullptr;
  const Report report = VerifyCompiledUnit(unit);
  EXPECT_TRUE(HasInvariant(report, "unit.plan_missing"))
      << report.ToString();
}

TEST(VerifyUnitTest, DroppedAssertCaught) {
  CompiledGraph unit = MakeCleanUnit();
  unit.num_assert_ops = 5;  // generation claims guards the graph lacks
  const Report report = VerifyCompiledUnit(unit);
  EXPECT_TRUE(HasInvariant(report, "unit.assert_count"))
      << report.ToString();
}

// ---- the auto-run hook ----

class VerifyHookTest : public ::testing::Test {
 protected:
  void TearDown() override {
    SetPlanVerifyHook(nullptr);
    SetVerifyEnabledForTesting(-1);
  }
};

TEST_F(VerifyHookTest, HookPassesCleanBuildsAndRejectsCorruptPlans) {
  InstallPlanVerifier();
  SetVerifyEnabledForTesting(1);
  // Clean plans build through the hook without throwing.
  Built b = BuildPlainDag();
  ASSERT_NE(GetPlanVerifyHook(), nullptr);
  EXPECT_NO_THROW(GetPlanVerifyHook()(b.g, *b.plan));
  // A corrupted plan is rejected with the report in the message.
  PlanCorruptor corruptor(&b.g, b.plan.get());
  ASSERT_GT(b.plan->memory().dag.size(), 0u);
  corruptor.memory().dag[0].output_reads += 1;
  EXPECT_THROW(GetPlanVerifyHook()(b.g, *b.plan), InternalError);
}

TEST_F(VerifyHookTest, DisabledHookSkipsVerification) {
  InstallPlanVerifier();
  SetVerifyEnabledForTesting(0);
  Built b = BuildPlainDag();
  PlanCorruptor corruptor(&b.g, b.plan.get());
  ASSERT_GT(b.plan->memory().dag.size(), 0u);
  corruptor.memory().dag[0].output_reads += 1;
  EXPECT_NO_THROW(GetPlanVerifyHook()(b.g, *b.plan));
}

}  // namespace
}  // namespace verify
}  // namespace janus
