// Unit tests for the tensor substrate: shapes, broadcasting, elementwise
// kernels, linear algebra, reductions, NN ops, and gather/scatter.
#include "tensor/ops.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "tensor/tensor.h"

namespace janus {
namespace {

using ::testing::Test;

Tensor Vec(std::vector<float> v) {
  const auto n = static_cast<std::int64_t>(v.size());
  return Tensor::FromVector(std::move(v), Shape{n});
}

Tensor Mat(std::vector<float> v, std::int64_t rows, std::int64_t cols) {
  return Tensor::FromVector(std::move(v), Shape{rows, cols});
}

void ExpectNear(const Tensor& t, const std::vector<float>& expected,
                float tol = 1e-5f) {
  ASSERT_EQ(t.num_elements(), static_cast<std::int64_t>(expected.size()));
  const auto data = t.data<float>();
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(data[i], expected[i], tol) << "at index " << i;
  }
}

TEST(ShapeTest, RankAndElements) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.num_elements(), 24);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.dim(-1), 4);
  EXPECT_EQ(s.ToString(), "(2, 3, 4)");
}

TEST(ShapeTest, ScalarShape) {
  const Shape s{};
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.num_elements(), 1);
}

TEST(ShapeTest, Strides) {
  const Shape s{2, 3, 4};
  const auto strides = s.Strides();
  EXPECT_EQ(strides, (std::vector<std::int64_t>{12, 4, 1}));
}

TEST(ShapeTest, BroadcastCompatible) {
  EXPECT_EQ(BroadcastShapes(Shape{4, 1}, Shape{3}), (Shape{4, 3}));
  EXPECT_EQ(BroadcastShapes(Shape{}, Shape{2, 2}), (Shape{2, 2}));
  EXPECT_EQ(BroadcastShapes(Shape{5, 1, 3}, Shape{1, 2, 1}), (Shape{5, 2, 3}));
}

TEST(ShapeTest, BroadcastIncompatibleThrows) {
  EXPECT_THROW(BroadcastShapes(Shape{2, 3}, Shape{4, 3}), InvalidArgument);
}

TEST(TensorTest, FactoryAndAccess) {
  const Tensor z = Tensor::Zeros(DType::kFloat32, Shape{2, 2});
  ExpectNear(z, {0, 0, 0, 0});
  const Tensor f = Tensor::Full(Shape{3}, 2.5f);
  ExpectNear(f, {2.5f, 2.5f, 2.5f});
  const Tensor s = Tensor::Scalar(7.0f);
  EXPECT_FLOAT_EQ(s.ScalarValue(), 7.0f);
  const Tensor i = Tensor::ScalarInt(42);
  EXPECT_EQ(i.ScalarIntValue(), 42);
  EXPECT_TRUE(Tensor::ScalarBool(true).ScalarBoolValue());
}

TEST(TensorTest, ReshapeSharesBufferAndChecksCount) {
  const Tensor t = Vec({1, 2, 3, 4});
  const Tensor r = t.Reshaped(Shape{2, 2});
  EXPECT_EQ(r.shape(), (Shape{2, 2}));
  EXPECT_THROW(t.Reshaped(Shape{3}), InvalidArgument);
}

TEST(TensorTest, ElementsEqual) {
  EXPECT_TRUE(Vec({1, 2}).ElementsEqual(Vec({1, 2})));
  EXPECT_FALSE(Vec({1, 2}).ElementsEqual(Vec({1, 3})));
  EXPECT_FALSE(Vec({1, 2}).ElementsEqual(Tensor::ScalarInt(1)));
}

TEST(TensorTest, DTypeMismatchThrows) {
  const Tensor t = Tensor::ScalarInt(1);
  EXPECT_THROW(t.data<float>(), InternalError);
}

TEST(TensorTest, DefaultTensorsShareOneZeroBuffer) {
  const Tensor a;
  const Tensor b;
  EXPECT_EQ(a.ScalarValue(), 0.0f);
  EXPECT_TRUE(a.SharesBufferWith(b));
  // The shared placeholder is always multiply-referenced, so it can never
  // be stolen for in-place writes.
  EXPECT_FALSE(a.BufferUnique());
}

TEST(TensorTest, ZerosAreZeroAndUninitializedIsDistinct) {
  const Tensor z = Tensor::Zeros(DType::kFloat32, Shape{3, 3});
  for (const float v : z.data<float>()) EXPECT_EQ(v, 0.0f);
  const Tensor u = Tensor::Uninitialized(DType::kInt64, Shape{2});
  EXPECT_EQ(u.byte_size(), 16u);
}

TEST(InPlaceReuseTest, NoReuseWithoutActiveScope) {
  // Outside an InPlaceScope, kernels always allocate fresh outputs — even
  // when an operand's buffer is uniquely referenced.
  const Tensor t = Vec({-1, 2, -3});
  EXPECT_TRUE(t.BufferUnique());
  const Tensor r = ops::Relu(t);
  EXPECT_FALSE(r.SharesBufferWith(t));
  ExpectNear(t, {-1, 2, -3});
}

TEST(InPlaceReuseTest, SharedBufferIsNeverMutatedInsideScope) {
  // Copy-on-write under in-place reuse: a second live reference must force
  // a fresh allocation even when the executor has opened the scope.
  Tensor x = Vec({-1, -2, -3});
  const Tensor alias = x;
  const InPlaceScope scope(true);
  const Tensor r = ops::Relu(x);
  EXPECT_FALSE(r.SharesBufferWith(x));
  ExpectNear(r, {0, 0, 0});
  ExpectNear(x, {-1, -2, -3});
  ExpectNear(alias, {-1, -2, -3});
}

TEST(InPlaceReuseTest, UniqueDeadInputIsReusedInsideScope) {
  // With the scope open (as the executor does for plan-marked nodes) and a
  // uniquely-referenced operand, the kernel writes over the dead buffer.
  Tensor t = Vec({-1, 2, -3});
  const void* buffer = t.data_id();
  const InPlaceScope scope(true);
  const Tensor r = ops::Relu(t);
  EXPECT_EQ(r.data_id(), buffer);
  ExpectNear(r, {0, 2, 0});
}

TEST(InPlaceReuseTest, ByteSizeMismatchForcesFreshAllocation) {
  // Comparisons produce bool (1 byte/elem) from float operands (4): the
  // byte-size gate must reject the steal despite matching element counts.
  Tensor a = Vec({1, 2, 3});
  Tensor b = Vec({2, 2, 2});
  const InPlaceScope scope(true);
  const Tensor r = ops::Less(a, b);
  EXPECT_FALSE(r.SharesBufferWith(a));
  EXPECT_FALSE(r.SharesBufferWith(b));
  EXPECT_EQ(r.dtype(), DType::kBool);
}

TEST(InPlaceReuseTest, BroadcastOperandsAreNeverReused) {
  // Broadcast Add takes the indexer path (output index != input index), so
  // neither operand's buffer may be stolen even inside the scope.
  Tensor m = Tensor::Full(Shape{2, 3}, 1.0f);
  Tensor row = Vec({10, 20, 30});
  const InPlaceScope scope(true);
  const Tensor r = ops::Add(m, row);
  EXPECT_FALSE(r.SharesBufferWith(m));
  EXPECT_FALSE(r.SharesBufferWith(row));
  ExpectNear(r, {11, 21, 31, 11, 21, 31});
}

TEST(ElementwiseTest, AddSameShape) {
  ExpectNear(ops::Add(Vec({1, 2, 3}), Vec({10, 20, 30})), {11, 22, 33});
}

TEST(ElementwiseTest, AddBroadcastScalar) {
  ExpectNear(ops::Add(Vec({1, 2, 3}), Tensor::Scalar(5)), {6, 7, 8});
}

TEST(ElementwiseTest, AddBroadcastRows) {
  const Tensor a = Mat({1, 2, 3, 4, 5, 6}, 2, 3);
  const Tensor row = Vec({10, 20, 30});
  ExpectNear(ops::Add(a, row), {11, 22, 33, 14, 25, 36});
}

TEST(ElementwiseTest, AddBroadcastColumns) {
  const Tensor a = Mat({1, 2, 3, 4, 5, 6}, 2, 3);
  const Tensor col = Mat({100, 200}, 2, 1);
  ExpectNear(ops::Add(a, col), {101, 102, 103, 204, 205, 206});
}

TEST(ElementwiseTest, IntArithmetic) {
  const Tensor a = Tensor::FromVectorInt({7, -7}, Shape{2});
  const Tensor b = Tensor::FromVectorInt({2, 2}, Shape{2});
  const Tensor fd = ops::FloorDiv(a, b);
  EXPECT_EQ(fd.data<std::int64_t>()[0], 3);
  EXPECT_EQ(fd.data<std::int64_t>()[1], -4);  // floor semantics
  const Tensor m = ops::Mod(a, b);
  EXPECT_EQ(m.data<std::int64_t>()[0], 1);
  EXPECT_EQ(m.data<std::int64_t>()[1], 1);  // Python-style modulo
}

TEST(ElementwiseTest, TrueDivPromotesIntToFloat) {
  const Tensor q = ops::Div(Tensor::ScalarInt(7), Tensor::ScalarInt(2));
  EXPECT_EQ(q.dtype(), DType::kFloat32);
  EXPECT_FLOAT_EQ(q.ScalarValue(), 3.5f);
}

TEST(ElementwiseTest, DivByZeroIntThrows) {
  EXPECT_THROW(ops::FloorDiv(Tensor::ScalarInt(1), Tensor::ScalarInt(0)),
               InvalidArgument);
}

TEST(ElementwiseTest, PowFloatAndInt) {
  EXPECT_FLOAT_EQ(ops::Pow(Tensor::Scalar(2), Tensor::Scalar(10)).ScalarValue(),
                  1024.0f);
  EXPECT_EQ(
      ops::Pow(Tensor::ScalarInt(3), Tensor::ScalarInt(4)).ScalarIntValue(),
      81);
}

TEST(ElementwiseTest, DTypeMismatchThrows) {
  EXPECT_THROW(ops::Add(Tensor::Scalar(1), Tensor::ScalarInt(1)),
               InvalidArgument);
}

TEST(ElementwiseTest, UnaryMath) {
  ExpectNear(ops::Neg(Vec({1, -2})), {-1, 2});
  ExpectNear(ops::Abs(Vec({-3, 4})), {3, 4});
  ExpectNear(ops::Exp(Vec({0, 1})), {1.0f, std::exp(1.0f)});
  ExpectNear(ops::Log(Vec({1, std::exp(2.0f)})), {0, 2});
  ExpectNear(ops::Sqrt(Vec({4, 9})), {2, 3});
  ExpectNear(ops::Square(Vec({3, -2})), {9, 4});
  ExpectNear(ops::Relu(Vec({-1, 0, 2})), {0, 0, 2});
  ExpectNear(ops::Sigmoid(Vec({0})), {0.5f});
  ExpectNear(ops::Tanh(Vec({0})), {0});
  ExpectNear(ops::Sign(Vec({-5, 0, 3})), {-1, 0, 1});
}

TEST(ElementwiseTest, ReluGradMasks) {
  ExpectNear(ops::ReluGrad(Vec({10, 10, 10}), Vec({-1, 0, 2})), {0, 0, 10});
}

TEST(ComparisonTest, ProducesBools) {
  const Tensor lt = ops::Less(Vec({1, 5}), Vec({3, 3}));
  EXPECT_EQ(lt.dtype(), DType::kBool);
  EXPECT_EQ(lt.data<std::uint8_t>()[0], 1);
  EXPECT_EQ(lt.data<std::uint8_t>()[1], 0);
  EXPECT_TRUE(ops::Equal(Tensor::ScalarInt(4), Tensor::ScalarInt(4))
                  .ScalarBoolValue());
  EXPECT_TRUE(ops::GreaterEqual(Tensor::Scalar(2), Tensor::Scalar(2))
                  .ScalarBoolValue());
}

TEST(ComparisonTest, LogicalOps) {
  const Tensor t = Tensor::ScalarBool(true);
  const Tensor f = Tensor::ScalarBool(false);
  EXPECT_FALSE(ops::LogicalAnd(t, f).ScalarBoolValue());
  EXPECT_TRUE(ops::LogicalOr(t, f).ScalarBoolValue());
  EXPECT_TRUE(ops::LogicalNot(f).ScalarBoolValue());
}

TEST(SelectTest, PicksByCondition) {
  const Tensor cond = ops::Greater(Vec({1, -1, 2}), Tensor::Scalar(0));
  ExpectNear(ops::Select(cond, Vec({10, 20, 30}), Vec({-10, -20, -30})),
             {10, -20, 30});
}

TEST(MatMulTest, Basic) {
  const Tensor a = Mat({1, 2, 3, 4}, 2, 2);
  const Tensor b = Mat({5, 6, 7, 8}, 2, 2);
  ExpectNear(ops::MatMul(a, b), {19, 22, 43, 50});
}

TEST(MatMulTest, RectangularShapes) {
  const Tensor a = Mat({1, 0, 0, 1, 1, 1}, 3, 2);
  const Tensor b = Mat({2, 3, 4, 5, 6, 7, 8, 9}, 2, 4);
  const Tensor c = ops::MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{3, 4}));
  ExpectNear(c, {2, 3, 4, 5, 6, 7, 8, 9, 8, 10, 12, 14});
}

TEST(MatMulTest, IncompatibleThrows) {
  EXPECT_THROW(ops::MatMul(Mat({1, 2}, 1, 2), Mat({1, 2, 3}, 1, 3)),
               InvalidArgument);
}

TEST(TransposeTest, Basic) {
  ExpectNear(ops::Transpose(Mat({1, 2, 3, 4, 5, 6}, 2, 3)),
             {1, 4, 2, 5, 3, 6});
}

TEST(ReduceTest, SumAll) {
  EXPECT_FLOAT_EQ(ops::ReduceSum(Mat({1, 2, 3, 4}, 2, 2)).ScalarValue(), 10);
}

TEST(ReduceTest, SumAxis0) {
  ExpectNear(ops::ReduceSum(Mat({1, 2, 3, 4, 5, 6}, 2, 3), {0}), {5, 7, 9});
}

TEST(ReduceTest, SumAxis1KeepDims) {
  const Tensor r = ops::ReduceSum(Mat({1, 2, 3, 4, 5, 6}, 2, 3), {1}, true);
  EXPECT_EQ(r.shape(), (Shape{2, 1}));
  ExpectNear(r, {6, 15});
}

TEST(ReduceTest, NegativeAxis) {
  ExpectNear(ops::ReduceSum(Mat({1, 2, 3, 4}, 2, 2), {-1}), {3, 7});
}

TEST(ReduceTest, Mean) {
  EXPECT_FLOAT_EQ(ops::ReduceMean(Vec({2, 4, 6})).ScalarValue(), 4);
}

TEST(ReduceTest, Max) {
  ExpectNear(ops::ReduceMax(Mat({1, 9, 3, 4, 5, 6}, 2, 3), {1}), {9, 6});
}

TEST(ReduceTest, ReduceToShapeReversesBroadcast) {
  const Tensor grad = Mat({1, 1, 1, 1, 1, 1}, 2, 3);
  const Tensor row = ops::ReduceToShape(grad, Shape{3});
  ExpectNear(row, {2, 2, 2});
  const Tensor col = ops::ReduceToShape(grad, Shape{2, 1});
  ExpectNear(col, {3, 3});
  const Tensor scalar = ops::ReduceToShape(grad, Shape{});
  EXPECT_FLOAT_EQ(scalar.ScalarValue(), 6);
}

TEST(ArgMaxTest, LastAxis) {
  const Tensor am = ops::ArgMax(Mat({1, 9, 3, 6, 5, 4}, 2, 3), -1);
  EXPECT_EQ(am.dtype(), DType::kInt64);
  EXPECT_EQ(am.data<std::int64_t>()[0], 1);
  EXPECT_EQ(am.data<std::int64_t>()[1], 0);
}

TEST(SoftmaxTest, RowsSumToOne) {
  const Tensor sm = ops::Softmax(Mat({1, 2, 3, 1, 1, 1}, 2, 3));
  const Tensor sums = ops::ReduceSum(sm, {1});
  ExpectNear(sums, {1, 1});
  // Uniform logits give uniform probabilities.
  const auto data = sm.data<float>();
  EXPECT_NEAR(data[3], 1.0f / 3, 1e-5f);
}

TEST(SoftmaxTest, NumericallyStableForLargeLogits) {
  const Tensor sm = ops::Softmax(Mat({1000, 1001, 999}, 1, 3));
  const auto data = sm.data<float>();
  EXPECT_FALSE(std::isnan(data[0]));
  EXPECT_GT(data[1], data[0]);
}

TEST(SoftmaxXentTest, MatchesManualComputation) {
  const Tensor logits = Mat({2, 1, 0, 0, 1, 2}, 2, 3);
  const Tensor labels = Tensor::FromVectorInt({0, 2}, Shape{2});
  const Tensor losses = ops::SoftmaxCrossEntropy(logits, labels);
  // loss = -log softmax(logits)[label]
  const float denom = std::exp(2.0f) + std::exp(1.0f) + std::exp(0.0f);
  const float expected = -std::log(std::exp(2.0f) / denom);
  ExpectNear(losses, {expected, expected}, 1e-4f);
}

TEST(OneHotTest, Basic) {
  const Tensor oh = ops::OneHot(Tensor::FromVectorInt({1, 0}, Shape{2}), 3);
  ExpectNear(oh, {0, 1, 0, 1, 0, 0});
}

TEST(OneHotTest, OutOfRangeThrows) {
  EXPECT_THROW(ops::OneHot(Tensor::FromVectorInt({5}, Shape{1}), 3),
               InvalidArgument);
}

TEST(ConcatTest, Axis0AndAxis1) {
  const Tensor a = Mat({1, 2, 3, 4}, 2, 2);
  const Tensor b = Mat({5, 6}, 1, 2);
  const Tensor c0 = ops::Concat({a, b}, 0);
  EXPECT_EQ(c0.shape(), (Shape{3, 2}));
  ExpectNear(c0, {1, 2, 3, 4, 5, 6});

  const Tensor col = Mat({9, 8}, 2, 1);
  const Tensor c1 = ops::Concat({a, col}, 1);
  EXPECT_EQ(c1.shape(), (Shape{2, 3}));
  ExpectNear(c1, {1, 2, 9, 3, 4, 8});
}

TEST(StackTest, AddsLeadingAxis) {
  const Tensor s = ops::Stack({Vec({1, 2}), Vec({3, 4}), Vec({5, 6})});
  EXPECT_EQ(s.shape(), (Shape{3, 2}));
  ExpectNear(s, {1, 2, 3, 4, 5, 6});
}

TEST(SliceTest, Basic) {
  const Tensor a = Mat({1, 2, 3, 4, 5, 6, 7, 8, 9}, 3, 3);
  const Tensor s = ops::Slice(a, {1, 0}, {2, 2});
  EXPECT_EQ(s.shape(), (Shape{2, 2}));
  ExpectNear(s, {4, 5, 7, 8});
}

TEST(SliceTest, NegativeOneSizeMeansToEnd) {
  const Tensor a = Vec({1, 2, 3, 4, 5});
  ExpectNear(ops::Slice(a, {2}, {-1}), {3, 4, 5});
}

TEST(SliceTest, OutOfBoundsThrows) {
  EXPECT_THROW(ops::Slice(Vec({1, 2}), {1}, {5}), InvalidArgument);
}

TEST(CastTest, RoundTrips) {
  const Tensor f = ops::Cast(Tensor::ScalarInt(3), DType::kFloat32);
  EXPECT_FLOAT_EQ(f.ScalarValue(), 3.0f);
  const Tensor i = ops::Cast(Tensor::Scalar(2.9f), DType::kInt64);
  EXPECT_EQ(i.ScalarIntValue(), 2);
  const Tensor b = ops::Cast(Tensor::Scalar(0.0f), DType::kBool);
  EXPECT_FALSE(b.ScalarBoolValue());
}

TEST(BroadcastToTest, Materialises) {
  const Tensor b = ops::BroadcastTo(Vec({1, 2}), Shape{3, 2});
  ExpectNear(b, {1, 2, 1, 2, 1, 2});
  EXPECT_THROW(ops::BroadcastTo(Vec({1, 2, 3}), Shape{2, 2}), InvalidArgument);
}

TEST(GatherTest, LooksUpRows) {
  const Tensor params = Mat({1, 2, 10, 20, 100, 200}, 3, 2);
  const Tensor ids = Tensor::FromVectorInt({2, 0, 2}, Shape{3});
  const Tensor g = ops::Gather(params, ids);
  EXPECT_EQ(g.shape(), (Shape{3, 2}));
  ExpectNear(g, {100, 200, 1, 2, 100, 200});
}

TEST(GatherTest, OutOfVocabThrows) {
  EXPECT_THROW(ops::Gather(Mat({1, 2}, 1, 2),
                           Tensor::FromVectorInt({1}, Shape{1})),
               InvalidArgument);
}

TEST(GatherGradTest, ScatterAddsDuplicates) {
  const Tensor ids = Tensor::FromVectorInt({1, 1, 0}, Shape{3});
  const Tensor grad = Mat({1, 1, 2, 2, 5, 5}, 3, 2);
  const Tensor g = ops::GatherGrad(Shape{3, 2}, ids, grad);
  ExpectNear(g, {5, 5, 3, 3, 0, 0});
}

TEST(Conv2DTest, IdentityFilterPreservesInput) {
  // 1x1 filter with weight 1: output == input.
  const Tensor input = Tensor::FromVector({1, 2, 3, 4}, Shape{1, 2, 2, 1});
  const Tensor filter = Tensor::FromVector({1}, Shape{1, 1, 1, 1});
  const Tensor out = ops::Conv2D(input, filter, 1, "VALID");
  EXPECT_EQ(out.shape(), (Shape{1, 2, 2, 1}));
  ExpectNear(out, {1, 2, 3, 4});
}

TEST(Conv2DTest, SumFilterValid) {
  // 2x2 all-ones filter over a 3x3 image: each output is a window sum.
  const Tensor input =
      Tensor::FromVector({1, 2, 3, 4, 5, 6, 7, 8, 9}, Shape{1, 3, 3, 1});
  const Tensor filter = Tensor::FromVector({1, 1, 1, 1}, Shape{2, 2, 1, 1});
  const Tensor out = ops::Conv2D(input, filter, 1, "VALID");
  EXPECT_EQ(out.shape(), (Shape{1, 2, 2, 1}));
  ExpectNear(out, {12, 16, 24, 28});
}

TEST(Conv2DTest, SamePaddingKeepsSpatialSize) {
  const Tensor input =
      Tensor::FromVector({1, 2, 3, 4, 5, 6, 7, 8, 9}, Shape{1, 3, 3, 1});
  const Tensor filter =
      Tensor::FromVector({0, 0, 0, 0, 1, 0, 0, 0, 0}, Shape{3, 3, 1, 1});
  const Tensor out = ops::Conv2D(input, filter, 1, "SAME");
  EXPECT_EQ(out.shape(), (Shape{1, 3, 3, 1}));
  ExpectNear(out, {1, 2, 3, 4, 5, 6, 7, 8, 9});  // centre-tap identity
}

TEST(Conv2DTest, StrideTwoHalvesOutput) {
  const Tensor input = Tensor::Full(Shape{1, 4, 4, 1}, 1.0f);
  const Tensor filter = Tensor::FromVector({1}, Shape{1, 1, 1, 1});
  const Tensor out = ops::Conv2D(input, filter, 2, "VALID");
  EXPECT_EQ(out.shape(), (Shape{1, 2, 2, 1}));
}

TEST(Conv2DTest, MultiChannel) {
  // 2 input channels summed by a 1x1 filter into one output channel.
  const Tensor input =
      Tensor::FromVector({1, 10, 2, 20, 3, 30, 4, 40}, Shape{1, 2, 2, 2});
  const Tensor filter = Tensor::FromVector({1, 1}, Shape{1, 1, 2, 1});
  ExpectNear(ops::Conv2D(input, filter, 1, "VALID"), {11, 22, 33, 44});
}

TEST(Conv2DGradTest, GradInputOfSumFilterSpreadsGradient) {
  const Shape in_shape{1, 2, 2, 1};
  const Tensor filter = Tensor::FromVector({1, 1, 1, 1}, Shape{2, 2, 1, 1});
  const Tensor grad = Tensor::FromVector({1}, Shape{1, 1, 1, 1});
  const Tensor gi = ops::Conv2DGradInput(in_shape, filter, grad, 1, "VALID");
  ExpectNear(gi, {1, 1, 1, 1});
}

TEST(Conv2DGradTest, GradFilterAccumulatesInput) {
  const Tensor input = Tensor::FromVector({1, 2, 3, 4}, Shape{1, 2, 2, 1});
  const Tensor grad = Tensor::FromVector({1}, Shape{1, 1, 1, 1});
  const Tensor gf =
      ops::Conv2DGradFilter(input, Shape{2, 2, 1, 1}, grad, 1, "VALID");
  ExpectNear(gf, {1, 2, 3, 4});
}

TEST(PoolTest, MaxPoolPicksWindowMax) {
  const Tensor input = Tensor::FromVector({1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15, 16},
                                          Shape{1, 4, 4, 1});
  const Tensor out = ops::MaxPool2D(input, 2, 2);
  EXPECT_EQ(out.shape(), (Shape{1, 2, 2, 1}));
  ExpectNear(out, {6, 8, 14, 16});
}

TEST(PoolTest, MaxPoolGradRoutesToArgmax) {
  const Tensor input =
      Tensor::FromVector({1, 5, 2, 3}, Shape{1, 2, 2, 1});
  const Tensor grad = Tensor::FromVector({7}, Shape{1, 1, 1, 1});
  const Tensor gi = ops::MaxPool2DGrad(input, grad, 2, 2);
  ExpectNear(gi, {0, 7, 0, 0});
}

TEST(PoolTest, AvgPoolAveragesAndGradSpreads) {
  const Tensor input = Tensor::FromVector({2, 4, 6, 8}, Shape{1, 2, 2, 1});
  EXPECT_FLOAT_EQ(
      ops::AvgPool2D(input, 2, 2).data<float>()[0], 5.0f);
  const Tensor grad = Tensor::FromVector({4}, Shape{1, 1, 1, 1});
  ExpectNear(ops::AvgPool2DGrad(Shape{1, 2, 2, 1}, grad, 2, 2), {1, 1, 1, 1});
}

TEST(RandomTest, DeterministicUnderSeed) {
  Rng rng1(123);
  Rng rng2(123);
  const Tensor a = ops::RandomNormal(Shape{8}, 0, 1, rng1);
  const Tensor b = ops::RandomNormal(Shape{8}, 0, 1, rng2);
  EXPECT_TRUE(a.ElementsEqual(b));
}

TEST(RandomTest, UniformWithinRange) {
  Rng rng(7);
  const Tensor u = ops::RandomUniform(Shape{100}, -2, 3, rng);
  for (const float v : u.data<float>()) {
    EXPECT_GE(v, -2.0f);
    EXPECT_LT(v, 3.0f);
  }
}

// Property-style sweep: ReduceToShape(grad_of(a op b), shape(x)) always has
// the operand's shape, for every broadcast combination.
class BroadcastShapeSweep
    : public ::testing::TestWithParam<std::pair<Shape, Shape>> {};

TEST_P(BroadcastShapeSweep, ReduceToShapeRestoresOperandShape) {
  const auto& [sa, sb] = GetParam();
  const Tensor a = Tensor::Full(sa, 1.0f);
  const Tensor b = Tensor::Full(sb, 2.0f);
  const Tensor out = ops::Add(a, b);
  EXPECT_EQ(out.shape(), BroadcastShapes(sa, sb));
  const Tensor grad = Tensor::Full(out.shape(), 1.0f);
  EXPECT_EQ(ops::ReduceToShape(grad, sa).shape(), sa);
  EXPECT_EQ(ops::ReduceToShape(grad, sb).shape(), sb);
}

INSTANTIATE_TEST_SUITE_P(
    Combos, BroadcastShapeSweep,
    ::testing::Values(std::pair<Shape, Shape>{Shape{4, 3}, Shape{3}},
                      std::pair<Shape, Shape>{Shape{4, 3}, Shape{4, 1}},
                      std::pair<Shape, Shape>{Shape{2, 1, 3}, Shape{1, 5, 1}},
                      std::pair<Shape, Shape>{Shape{}, Shape{2, 2}},
                      std::pair<Shape, Shape>{Shape{1}, Shape{3, 1}},
                      std::pair<Shape, Shape>{Shape{5}, Shape{5}}));

}  // namespace
}  // namespace janus
