// Unit tests for the graph IR: node construction, attributes, control
// dependencies, pruning, and the function library.
#include "graph/graph.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace janus {
namespace {

TEST(GraphTest, AddNodeAssignsUniqueIdsAndNames) {
  Graph g;
  Node* a = g.AddNode("Const", {}, {{"value", Tensor::Scalar(1)}});
  Node* b = g.AddNode("Const", {}, {{"value", Tensor::Scalar(2)}});
  EXPECT_NE(a->id(), b->id());
  EXPECT_NE(a->name(), b->name());
  EXPECT_EQ(g.num_nodes(), 2u);
}

TEST(GraphTest, ExplicitNamePreserved) {
  Graph g;
  Node* n = g.AddNode("NoOp", {}, {}, 1, "anchor");
  EXPECT_EQ(n->name(), "anchor");
}

TEST(GraphTest, InputsWireProducersToConsumers) {
  Graph g;
  const NodeOutput c1 = g.Constant(Tensor::Scalar(1));
  const NodeOutput c2 = g.Constant(Tensor::Scalar(2));
  Node* add = g.AddNode("Add", {c1, c2});
  ASSERT_EQ(add->num_inputs(), 2);
  EXPECT_EQ(add->input(0).node, c1.node);
  EXPECT_EQ(add->input(1).node, c2.node);
}

TEST(GraphTest, InvalidInputIndexRejected) {
  Graph g;
  const NodeOutput c = g.Constant(Tensor::Scalar(1));
  EXPECT_THROW(g.AddNode("Add", {{c.node, 3}, c}), ContractViolation);
}

TEST(GraphTest, SetInputRewires) {
  Graph g;
  const NodeOutput c1 = g.Constant(Tensor::Scalar(1));
  const NodeOutput c2 = g.Constant(Tensor::Scalar(2));
  Node* neg = g.AddNode("Neg", {c1});
  neg->set_input(0, c2);
  EXPECT_EQ(neg->input(0).node, c2.node);
}

TEST(GraphTest, ControlInputs) {
  Graph g;
  Node* a = g.AddNode("NoOp", {});
  Node* b = g.AddNode("NoOp", {});
  b->AddControlInput(a);
  ASSERT_EQ(b->control_inputs().size(), 1u);
  EXPECT_EQ(b->control_inputs()[0], a);
  Node* c = g.AddNode("NoOp", {});
  b->ReplaceControlInput(a, c);
  EXPECT_EQ(b->control_inputs()[0], c);
}

TEST(GraphTest, AttrAccessors) {
  Graph g;
  Node* n = g.AddNode("Conv2D", {},
                      {{"stride", std::int64_t{2}},
                       {"padding", std::string("SAME")},
                       {"training", true},
                       {"rate", 0.5},
                       {"axes", std::vector<std::int64_t>{0, 1}},
                       {"dtype", DType::kInt64}});
  EXPECT_EQ(n->GetIntAttr("stride"), 2);
  EXPECT_EQ(n->GetStringAttr("padding"), "SAME");
  EXPECT_TRUE(n->GetBoolAttr("training"));
  EXPECT_DOUBLE_EQ(n->GetFloatAttr("rate"), 0.5);
  EXPECT_EQ(n->GetIntListAttr("axes"), (std::vector<std::int64_t>{0, 1}));
  EXPECT_EQ(n->GetDTypeAttr("dtype"), DType::kInt64);
  EXPECT_TRUE(n->HasAttr("stride"));
  EXPECT_FALSE(n->HasAttr("missing"));
  EXPECT_THROW(n->attr("missing"), InternalError);
  EXPECT_THROW(n->GetIntAttr("padding"), InternalError);
}

TEST(GraphTest, SetAttrOverwrites) {
  Graph g;
  Node* n = g.AddNode("NoOp", {});
  n->SetAttr("k", std::int64_t{1});
  n->SetAttr("k", std::int64_t{7});
  EXPECT_EQ(n->GetIntAttr("k"), 7);
}

TEST(GraphTest, PruneKeepsOnlyListedNodes) {
  Graph g;
  Node* a = g.AddNode("NoOp", {});
  g.AddNode("NoOp", {});
  Node* c = g.AddNode("NoOp", {});
  g.Prune({a, c});
  EXPECT_EQ(g.num_nodes(), 2u);
}

TEST(GraphTest, DebugStringMentionsOpAndInputs) {
  Graph g;
  const NodeOutput c = g.Constant(Tensor::Scalar(3), "three");
  Node* neg = g.AddNode("Neg", {c}, {}, 1, "negate");
  const std::string s = neg->DebugString();
  EXPECT_NE(s.find("Neg"), std::string::npos);
  EXPECT_NE(s.find("three"), std::string::npos);
}

TEST(FunctionLibraryTest, RegisterAndLookup) {
  FunctionLibrary lib;
  auto fn = std::make_unique<GraphFunction>();
  fn->name = "f";
  Node* p = fn->graph.AddNode("Param", {}, {{"index", std::int64_t{0}}});
  fn->parameters = {p};
  fn->results = {{p, 0}};
  lib.Register(std::move(fn));
  EXPECT_TRUE(lib.Contains("f"));
  EXPECT_FALSE(lib.Contains("g"));
  EXPECT_EQ(lib.Lookup("f").parameters.size(), 1u);
  EXPECT_THROW(lib.Lookup("g"), InvalidArgument);
}

TEST(FunctionLibraryTest, DuplicateNameThrows) {
  FunctionLibrary lib;
  auto fn1 = std::make_unique<GraphFunction>();
  fn1->name = "dup";
  lib.Register(std::move(fn1));
  auto fn2 = std::make_unique<GraphFunction>();
  fn2->name = "dup";
  EXPECT_THROW(lib.Register(std::move(fn2)), InvalidArgument);
}

}  // namespace
}  // namespace janus
