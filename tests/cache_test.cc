// Tests for the src/cache subsystem: the ShapeAssumption lattice edges the
// despecialization ladder walks, the PlanCache, the SpecializationCache's
// budgets / cost-aware eviction / churn ladder / guard promotion, and the
// engine running end-to-end through a tight-budget cache.
#include "cache/specialization_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "cache/plan_cache.h"
#include "core/assumptions.h"
#include "core/engine.h"
#include "core/profiler.h"
#include "frontend/builtins.h"

namespace janus {
namespace {

using cache::CacheOptions;
using cache::PlanCache;
using cache::SpecializationCache;
using cache::ValidationDecision;

// ===========================================================================
// ShapeAssumption lattice edges (Fig. 4)
// ===========================================================================

TEST(ShapeAssumptionTest, RankChangeCollapsesToUnknown) {
  const auto exact = ShapeAssumption::Exact(Shape({4, 2}));
  const auto relaxed = exact.Relaxed(Shape({4, 2, 1}));
  EXPECT_TRUE(relaxed.is_unknown());
  EXPECT_EQ(relaxed.rank(), -1);
  EXPECT_TRUE(relaxed.Matches(Shape({7})));
}

TEST(ShapeAssumptionTest, ScalarExactMatchesOnlyScalar) {
  const auto scalar = ShapeAssumption::Exact(Shape{});
  EXPECT_TRUE(scalar.IsExact());
  EXPECT_EQ(scalar.rank(), 0);
  EXPECT_TRUE(scalar.Matches(Shape{}));
  EXPECT_FALSE(scalar.Matches(Shape({1})));
  // Relaxing a scalar against a scalar is the identity.
  const auto relaxed = scalar.Relaxed(Shape{});
  EXPECT_TRUE(relaxed.IsExact());
  EXPECT_EQ(relaxed.rank(), 0);
}

TEST(ShapeAssumptionTest, UnknownRelaxationIsIdempotent) {
  const auto unknown = ShapeAssumption::Unknown();
  const auto once = unknown.Relaxed(Shape({3, 3}));
  EXPECT_TRUE(once.is_unknown());
  const auto twice = once.Relaxed(Shape({5}));
  EXPECT_TRUE(twice.is_unknown());
  EXPECT_TRUE(unknown.RelaxedToRank().is_unknown());
}

TEST(ShapeAssumptionTest, AnyOfRankMatchesByRankOnly) {
  const auto rank2 = ShapeAssumption::AnyOfRank(2);
  EXPECT_FALSE(rank2.is_unknown());
  EXPECT_FALSE(rank2.IsExact());
  EXPECT_EQ(rank2.rank(), 2);
  EXPECT_TRUE(rank2.Matches(Shape({1, 1})));
  EXPECT_TRUE(rank2.Matches(Shape({100, 7})));
  EXPECT_FALSE(rank2.Matches(Shape({3})));
  EXPECT_FALSE(rank2.Matches(Shape{}));
  EXPECT_EQ(rank2.ToString(), "(?, ?)");
}

TEST(ShapeAssumptionTest, RelaxedToRankDropsDimsButKeepsRank) {
  const auto exact = ShapeAssumption::Exact(Shape({4, 2}));
  const auto ranked = exact.RelaxedToRank();
  EXPECT_EQ(ranked.rank(), 2);
  EXPECT_TRUE(ranked.Matches(Shape({9, 9})));
  EXPECT_FALSE(ranked.Matches(Shape({9})));
  // Partially-wildcarded shapes also drop to rank-only.
  const auto partial = exact.Relaxed(Shape({3, 2}));  // (?, 2)
  EXPECT_FALSE(partial.Matches(Shape({3, 5})));
  EXPECT_TRUE(partial.RelaxedToRank().Matches(Shape({3, 5})));
}

// ===========================================================================
// Profiler failed-assumption bound (the unbounded-growth fix)
// ===========================================================================

TEST(ProfilerTest, FailedAssumptionsAgeOutAtCap) {
  Profiler profiler;
  for (std::size_t i = 0; i < Profiler::kMaxFailedAssumptions + 50; ++i) {
    profiler.MarkAssumptionFailed("id" + std::to_string(i));
  }
  EXPECT_EQ(profiler.failed_assumption_count(),
            Profiler::kMaxFailedAssumptions);
  // Oldest marks aged out; newest retained.
  EXPECT_FALSE(profiler.HasFailed("id0"));
  EXPECT_TRUE(profiler.HasFailed(
      "id" + std::to_string(Profiler::kMaxFailedAssumptions + 49)));
}

TEST(ProfilerTest, RemarkingRefreshesAgingStamp) {
  Profiler profiler;
  profiler.MarkAssumptionFailed("keep");
  for (std::size_t i = 0; i < Profiler::kMaxFailedAssumptions - 1; ++i) {
    profiler.MarkAssumptionFailed("filler" + std::to_string(i));
  }
  profiler.MarkAssumptionFailed("keep");  // refresh
  profiler.MarkAssumptionFailed("overflow");
  EXPECT_TRUE(profiler.HasFailed("keep"));
  EXPECT_FALSE(profiler.HasFailed("filler0"));
}

// ===========================================================================
// PlanCache
// ===========================================================================

TEST(PlanCacheTest, FindMissesThenHitsAfterInsert) {
  PlanCache plans;
  int a = 0;
  const std::vector<PlanCache::FetchId> fetches{{&a, 0}};
  EXPECT_EQ(plans.Find(1, fetches), nullptr);
  auto plan = std::make_shared<const int>(42);
  plans.Insert(1, fetches, plan);
  EXPECT_EQ(plans.Find(1, fetches), plan);
  // Different version and different fetch set miss.
  EXPECT_EQ(plans.Find(2, fetches), nullptr);
  const std::vector<PlanCache::FetchId> other{{&a, 1}};
  EXPECT_EQ(plans.Find(1, other), nullptr);
}

TEST(PlanCacheTest, StaleVersionsDropOnInsertAndFifoBounds) {
  PlanCache plans;
  int anchor = 0;
  std::vector<PlanCache::FetchId> f1{{&anchor, 1}};
  plans.Insert(1, f1, std::make_shared<const int>(1));
  EXPECT_EQ(plans.size(), 1u);
  // Inserting under a newer version drops the stale entry.
  std::vector<PlanCache::FetchId> f2{{&anchor, 2}};
  plans.Insert(2, f2, std::make_shared<const int>(2));
  EXPECT_EQ(plans.size(), 1u);
  EXPECT_EQ(plans.Find(1, f1), nullptr);
  // FIFO bound under one version.
  for (int i = 0; i < 64; ++i) {
    std::vector<PlanCache::FetchId> f{{&anchor, 100 + i}};
    plans.Insert(2, f, std::make_shared<const int>(i));
  }
  EXPECT_LE(plans.size(), PlanCache::MaxEntries());
}

// ===========================================================================
// SpecializationCache
// ===========================================================================

class SpecializationCacheTest : public ::testing::Test {
 protected:
  static CacheOptions SmallOptions() {
    CacheOptions options;
    options.max_bytes = 1 << 20;
    options.max_entries = 64;
    options.max_entries_per_key = 4;
    options.promotion_runs = 3;
    options.audit_interval = 4;
    options.churn_per_level = 2;
    return options;
  }

  SpecializationCache::Key KeyFor(int unit, std::uint64_t variant = 0) {
    return {this, reinterpret_cast<const void*>(
                      static_cast<std::uintptr_t>(unit + 1)),
            variant};
  }

  static SpecializationCache::Payload MakePayload(int tag) {
    return std::make_shared<int>(tag);
  }

  obs::MetricsRegistry registry;
};

TEST_F(SpecializationCacheTest, LookupReturnsMruFirst) {
  SpecializationCache cache(SmallOptions(), &registry);
  const auto key = KeyFor(0);
  auto first = cache.Insert(key, MakePayload(1), 100, 1000);
  auto second = cache.Insert(key, MakePayload(2), 100, 1000);
  auto listed = cache.Lookup(key);
  ASSERT_EQ(listed.size(), 2u);
  EXPECT_EQ(listed[0], second);  // most recent insert first
  // Using `first` moves it to the front.
  (void)cache.BeginUse(first);
  listed = cache.Lookup(key);
  EXPECT_EQ(listed[0], first);
}

TEST_F(SpecializationCacheTest, PerKeyCapEvictsKeyLru) {
  auto options = SmallOptions();
  options.max_entries_per_key = 2;
  SpecializationCache cache(options, &registry);
  const auto key = KeyFor(0);
  auto a = cache.Insert(key, MakePayload(1), 100, 1000);
  auto b = cache.Insert(key, MakePayload(2), 100, 1000);
  auto c = cache.Insert(key, MakePayload(3), 100, 1000);
  const auto listed = cache.Lookup(key);
  ASSERT_EQ(listed.size(), 2u);
  EXPECT_EQ(listed[0], c);
  EXPECT_EQ(listed[1], b);
  EXPECT_FALSE(a->resident);
  EXPECT_EQ(cache.Stats(key).evictions, 1);
}

TEST_F(SpecializationCacheTest, ByteBudgetEvictsCheapBulkyFirst) {
  auto options = SmallOptions();
  options.max_bytes = 1000;
  SpecializationCache cache(options, &registry);
  // Hot + expensive-per-byte vs cold + cheap-per-byte.
  const auto hot_key = KeyFor(0);
  auto hot = cache.Insert(hot_key, MakePayload(1), 100, 1'000'000);
  for (int i = 0; i < 8; ++i) {
    (void)cache.BeginUse(hot);
    cache.OnRunSuccess(hot_key, hot);
  }
  auto cold = cache.Insert(KeyFor(1), MakePayload(2), 800, 100);
  // A third entry pushes past 1000 bytes; the cheap bulky one must go.
  auto fresh = cache.Insert(KeyFor(2), MakePayload(3), 300, 500'000);
  EXPECT_TRUE(hot->resident);
  EXPECT_FALSE(cold->resident);
  EXPECT_TRUE(fresh->resident);
  const auto snapshot = cache.TakeSnapshot();
  EXPECT_LE(snapshot.bytes_in_use, 1000);
}

TEST_F(SpecializationCacheTest, EntryBudgetBoundsResidency) {
  auto options = SmallOptions();
  options.max_entries = 3;
  SpecializationCache cache(options, &registry);
  for (int i = 0; i < 10; ++i) {
    cache.Insert(KeyFor(i), MakePayload(i), 10, 100);
  }
  EXPECT_EQ(cache.TakeSnapshot().entries, 3);
}

TEST_F(SpecializationCacheTest, OversizedEntryInsertsNonResident) {
  auto options = SmallOptions();
  options.max_bytes = 1000;
  SpecializationCache cache(options, &registry);
  auto small = cache.Insert(KeyFor(0), MakePayload(1), 100, 100);
  auto huge = cache.Insert(KeyFor(1), MakePayload(2), 5000, 100);
  EXPECT_TRUE(small->resident);  // never evicted to make room for huge
  EXPECT_FALSE(huge->resident);
  // The caller's ref still carries the payload for the current run.
  EXPECT_NE(huge->payload, nullptr);
  EXPECT_TRUE(cache.Lookup(KeyFor(1)).empty());
}

TEST_F(SpecializationCacheTest, EvictThenReinsertCountsChurnAndClimbsLadder) {
  auto options = SmallOptions();
  options.max_entries_per_key = 1;
  options.churn_per_level = 2;
  SpecializationCache cache(options, &registry);
  const auto key = KeyFor(0);
  EXPECT_EQ(cache.DespecializationLevel(key), 0);
  cache.Insert(key, MakePayload(0), 100, 100);
  for (int i = 1; i <= 5; ++i) {
    // Each insert evicts the previous entry (cap 1); the *next* insert
    // then counts one evict-then-reinsert churn event, so the final
    // eviction has no churn yet.
    cache.Insert(key, MakePayload(i), 100, 100);
  }
  const auto stats = cache.Stats(key);
  EXPECT_EQ(stats.evictions, 5);
  EXPECT_EQ(stats.churn_events, 4);
  EXPECT_EQ(stats.ladder_level, 2);  // 4 events / 2 per level
  EXPECT_EQ(cache.DespecializationLevel(key), 2);
}

TEST_F(SpecializationCacheTest, LadderIsCappedAtMaxLevel) {
  auto options = SmallOptions();
  options.max_entries_per_key = 1;
  options.churn_per_level = 1;
  options.max_ladder_level = 3;
  SpecializationCache cache(options, &registry);
  const auto key = KeyFor(0);
  for (int i = 0; i < 12; ++i) {
    auto entry = cache.Insert(key, MakePayload(i), 100, 100);
    cache.OnEntryFailure(key, entry);
  }
  EXPECT_EQ(cache.DespecializationLevel(key), 3);
}

TEST_F(SpecializationCacheTest, FailureRemovesEntryAndBumpsEpoch) {
  SpecializationCache cache(SmallOptions(), &registry);
  const auto key = KeyFor(0);
  auto entry = cache.Insert(key, MakePayload(1), 100, 100);
  const auto epoch_before = cache.epoch();
  cache.OnEntryFailure(key, entry);
  EXPECT_TRUE(cache.Lookup(key).empty());
  EXPECT_FALSE(entry->resident);
  EXPECT_EQ(cache.epoch(), epoch_before + 1);
  EXPECT_EQ(cache.Stats(key).failures, 1);
}

TEST_F(SpecializationCacheTest, PromotionAfterQuietRunsThenSkips) {
  SpecializationCache cache(SmallOptions(), &registry);  // promotion_runs = 3
  const auto key = KeyFor(0);
  auto entry = cache.Insert(key, MakePayload(1), 100, 100);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(cache.BeginUse(entry), ValidationDecision::kValidate);
    cache.OnRunSuccess(key, entry);
  }
  EXPECT_TRUE(entry->promoted);
  // audit_interval = 4: three skips, then an audit.
  EXPECT_EQ(cache.BeginUse(entry), ValidationDecision::kSkip);
  EXPECT_EQ(cache.BeginUse(entry), ValidationDecision::kSkip);
  EXPECT_EQ(cache.BeginUse(entry), ValidationDecision::kSkip);
  EXPECT_EQ(cache.BeginUse(entry), ValidationDecision::kAudit);
  EXPECT_EQ(cache.BeginUse(entry), ValidationDecision::kSkip);
}

TEST_F(SpecializationCacheTest, EpochBumpDemotesPromotedEntries) {
  SpecializationCache cache(SmallOptions(), &registry);
  const auto key = KeyFor(0);
  auto promoted = cache.Insert(key, MakePayload(1), 100, 100);
  for (int i = 0; i < 3; ++i) {
    (void)cache.BeginUse(promoted);
    cache.OnRunSuccess(key, promoted);
  }
  EXPECT_EQ(cache.BeginUse(promoted), ValidationDecision::kSkip);
  // A failure anywhere (different key) bumps the global epoch...
  const auto other_key = KeyFor(1);
  auto failing = cache.Insert(other_key, MakePayload(2), 100, 100);
  cache.OnEntryFailure(other_key, failing);
  // ...demoting the promoted entry at its next use.
  EXPECT_EQ(cache.BeginUse(promoted), ValidationDecision::kValidate);
  EXPECT_FALSE(promoted->promoted);
  // It re-promotes after another quiet streak.
  cache.OnRunSuccess(key, promoted);
  (void)cache.BeginUse(promoted);
  cache.OnRunSuccess(key, promoted);
  (void)cache.BeginUse(promoted);
  cache.OnRunSuccess(key, promoted);
  EXPECT_EQ(cache.BeginUse(promoted), ValidationDecision::kSkip);
}

TEST_F(SpecializationCacheTest, AuditMismatchDemotesAndCountsChurn) {
  SpecializationCache cache(SmallOptions(), &registry);
  const auto key = KeyFor(0);
  auto entry = cache.Insert(key, MakePayload(1), 100, 100);
  for (int i = 0; i < 3; ++i) {
    (void)cache.BeginUse(entry);
    cache.OnRunSuccess(key, entry);
  }
  EXPECT_TRUE(entry->promoted);
  const auto epoch_before = cache.epoch();
  cache.OnAuditMismatch(key, entry);
  EXPECT_FALSE(entry->promoted);
  EXPECT_EQ(cache.epoch(), epoch_before + 1);
  EXPECT_EQ(cache.Stats(key).churn_events, 1);
  // The entry itself survives (its guards caught the drift — the graph is
  // still sound for contexts that do validate).
  EXPECT_TRUE(entry->resident);
}

TEST_F(SpecializationCacheTest, PromotionDisabledNeverSkips) {
  auto options = SmallOptions();
  options.enable_promotion = false;
  SpecializationCache cache(options, &registry);
  const auto key = KeyFor(0);
  auto entry = cache.Insert(key, MakePayload(1), 100, 100);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(cache.BeginUse(entry), ValidationDecision::kValidate);
    cache.OnRunSuccess(key, entry);
  }
  EXPECT_FALSE(entry->promoted);
}

TEST_F(SpecializationCacheTest, PurgeOwnerRemovesOnlyThatOwner) {
  SpecializationCache cache(SmallOptions(), &registry);
  int other_owner = 0;
  const SpecializationCache::Key mine = KeyFor(0);
  const SpecializationCache::Key theirs{&other_owner, &other_owner, 0};
  cache.Insert(mine, MakePayload(1), 100, 100);
  cache.Insert(theirs, MakePayload(2), 100, 100);
  cache.PurgeOwner(this);
  EXPECT_TRUE(cache.Lookup(mine).empty());
  EXPECT_EQ(cache.Lookup(theirs).size(), 1u);
  EXPECT_EQ(cache.TakeSnapshot().entries, 1);
}

TEST_F(SpecializationCacheTest, TextReportNamesBudgetsAndCounters) {
  SpecializationCache cache(SmallOptions(), &registry);
  const auto key = KeyFor(0);
  auto entry = cache.Insert(key, MakePayload(1), 100, 100);
  (void)cache.BeginUse(entry);
  cache.OnRunSuccess(key, entry);
  const std::string report = cache.TextReport();
  EXPECT_NE(report.find("cache.insertions"), std::string::npos);
  EXPECT_NE(report.find("cache.hits"), std::string::npos);
  EXPECT_NE(report.find("cache.lookup_ns"), std::string::npos);
  EXPECT_NE(report.find("budget"), std::string::npos);
}

// ===========================================================================
// Engine end-to-end through the cache
// ===========================================================================

class CacheEngineTest : public ::testing::Test {
 protected:
  struct Session {
    Session(EngineOptions options, std::uint64_t seed = 17)
        : rng(seed), interp(&variables, &rng), engine(&interp, options) {
      minipy::InstallBuiltins(interp);
      engine.Attach();
    }
    VariableStore variables;
    Rng rng;
    minipy::Interpreter interp;
    JanusEngine engine;

    double Num(const std::string& global) {
      const minipy::Value v = interp.GetGlobal(global);
      if (const auto* t = std::get_if<Tensor>(&v)) {
        return t->ElementAsDouble(0);
      }
      if (const auto* d = std::get_if<double>(&v)) return *d;
      if (const auto* i = std::get_if<std::int64_t>(&v)) {
        return static_cast<double>(*i);
      }
      ADD_FAILURE() << "global " << global << " is not numeric";
      return 0;
    }
  };
};

TEST_F(CacheEngineTest, TightBudgetForcesEvictionsButStaysCorrect) {
  EngineOptions options;
  options.private_cache = true;
  options.cache.max_entries = 1;  // every second unit evicts the first
  options.cache.max_entries_per_key = 1;
  Session session(options);
  // Two conversion units ping-pong: with one resident entry total, each
  // run of one evicts the other's graph, yet results must stay exact.
  session.interp.Run(R"(
wa = variable('wa', constant([2.0]))
wb = variable('wb', constant([3.0]))

def loss_a():
    return reduce_sum(wa * wa)

def loss_b():
    return reduce_sum(wb * wb * wb)

ra = 0.0
rb = 0.0
for i in range(20):
    ra = float(optimize(loss_a, 0.0))
    rb = float(optimize(loss_b, 0.0))
)");
  EXPECT_NEAR(session.Num("ra"), 4.0, 1e-4);
  EXPECT_NEAR(session.Num("rb"), 27.0, 1e-4);
  const auto& cache = session.engine.graph_cache();
  EXPECT_EQ(cache.TakeSnapshot().entries, 1);
  const obs::Counter* evictions =
      session.engine.metrics().FindCounter("cache.evictions");
  ASSERT_NE(evictions, nullptr);
  EXPECT_GT(evictions->Value(), 0);
  // Evict/regenerate churn climbed the despecialization ladder.
  const obs::Counter* churn =
      session.engine.metrics().FindCounter("cache.churn_events");
  ASSERT_NE(churn, nullptr);
  EXPECT_GT(churn->Value(), 0);
  EXPECT_EQ(session.engine.stats().assumption_failures, 0);
}

TEST_F(CacheEngineTest, PromotionSkipsValidationOnQuietUnit) {
  EngineOptions options;
  options.private_cache = true;
  options.cache.promotion_runs = 5;
  options.cache.audit_interval = 8;
  Session session(options);
  session.interp.Run(R"(
w = variable('pw', constant([[0.2]]))
x = constant([[1.0], [2.0]])
y = constant([[2.0], [4.0]])

def loss_fn():
    err = matmul(x, w) - y
    return reduce_mean(err * err)

last = 0.0
for i in range(40):
    last = float(optimize(loss_fn, 0.01))
)");
  EXPECT_LT(session.Num("last"), 4.0);
  const obs::Counter* promotions =
      session.engine.metrics().FindCounter("cache.promotions");
  const obs::Counter* skips =
      session.engine.metrics().FindCounter("cache.validation_skips");
  const obs::Counter* audits =
      session.engine.metrics().FindCounter("cache.audits");
  ASSERT_NE(promotions, nullptr);
  ASSERT_NE(skips, nullptr);
  ASSERT_NE(audits, nullptr);
  EXPECT_GE(promotions->Value(), 1);
  EXPECT_GT(skips->Value(), 10);
  EXPECT_GE(audits->Value(), 1);  // periodic full revalidation still runs
  EXPECT_EQ(session.engine.stats().assumption_failures, 0);
}

TEST_F(CacheEngineTest, AssumptionFailureDemotesViaEpoch) {
  EngineOptions options;
  options.private_cache = true;
  options.cache.promotion_runs = 3;
  options.cache.audit_interval = 1000;  // isolate the epoch path
  Session session(options);
  session.interp.Run(R"(
w = variable('ew', constant([2.0]))
mode = constant([1.0])

def loss_fn():
    h = w * 3.0
    if reduce_sum(mode) > 0.0:
        out = h * h
    else:
        out = h + 100.0
    return reduce_sum(out)

r1 = 0.0
for i in range(12):
    r1 = float(optimize(loss_fn, 0.0))
)");
  const auto epoch_before = session.engine.graph_cache().epoch();
  const obs::Counter* skips =
      session.engine.metrics().FindCounter("cache.validation_skips");
  ASSERT_NE(skips, nullptr);
  EXPECT_GT(skips->Value(), 0);  // the stable-branch graph got promoted
  // Flip the branch: the AssertOp fails, the entry dies, the epoch bumps.
  session.interp.Run(R"(
mode = constant([-1.0])
r2 = 0.0
for i in range(8):
    r2 = float(optimize(loss_fn, 0.0))
)");
  EXPECT_NEAR(session.Num("r2"), 106.0, 1e-3);
  EXPECT_GT(session.engine.graph_cache().epoch(), epoch_before);
  EXPECT_GE(session.engine.stats().assumption_failures, 1);
}

TEST_F(CacheEngineTest, DespecializedRegenerationStopsShapeThrash) {
  EngineOptions options;
  options.private_cache = true;
  options.cache.max_entries_per_key = 1;  // every regeneration evicts
  options.cache.churn_per_level = 2;
  Session session(options);
  // Batch size changes every few calls. With one candidate per key, each
  // exact-shape regeneration evicts the previous one — churn that must
  // drive the ladder until a relaxed graph stops the thrash.
  session.interp.Run(R"(
w = variable('dw', constant([[1.0], [1.0]]))
batch = zeros([4, 2])

def loss_fn():
    return reduce_mean(matmul(batch, w))

for i in range(6):
    optimize(loss_fn, 0.0)
)");
  for (int size = 2; size <= 9; ++size) {
    session.interp.Run("batch = zeros([" + std::to_string(size) +
                       ", 2])\nfor i in range(3):\n    optimize(loss_fn, "
                       "0.0)\n");
  }
  const auto stats = session.engine.stats();
  // The relaxed (?, 2) graph eventually absorbs every batch size: far
  // fewer generations than batch-size changes.
  EXPECT_LT(stats.graph_generations, 8);
  EXPECT_GT(stats.graph_executions, 0);
  EXPECT_EQ(stats.assumption_failures, 0);
}

}  // namespace
}  // namespace janus
