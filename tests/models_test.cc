// Tests for the model zoo: every Table 2 model must run imperatively,
// convert under JANUS (graph executions observed, no refusals), produce
// finite losses matching the imperative executor, and learn.
#include "models/zoo.h"

#include <cmath>

#include <gtest/gtest.h>

#include "models/cartpole.h"
#include "models/datasets.h"

namespace janus::models {
namespace {

TEST(DatasetsTest, SyntheticImagesHaveClassStructure) {
  Rng rng(5);
  const auto [x, y] = SyntheticImageBatch(rng, 8, 12, 12, 1, 8);
  EXPECT_EQ(x.shape(), (Shape{8, 12, 12, 1}));
  EXPECT_EQ(y.shape(), (Shape{8}));
  for (const std::int64_t label : y.data<std::int64_t>()) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 8);
  }
}

TEST(DatasetsTest, MarkovTokensShifted) {
  Rng rng(5);
  const auto [x, y] = MarkovTokenBatch(rng, 6, 4, 16);
  EXPECT_EQ(x.shape(), (Shape{6, 4}));
  // y[t] == x[t+1] for t < T-1 (same chain, shifted).
  const auto xv = x.data<std::int64_t>();
  const auto yv = y.data<std::int64_t>();
  for (int t = 0; t < 5; ++t) {
    for (int b = 0; b < 4; ++b) {
      EXPECT_EQ(yv[static_cast<std::size_t>(t * 4 + b)],
                xv[static_cast<std::size_t>((t + 1) * 4 + b)]);
    }
  }
}

TEST(CartPoleTest, PhysicsAndTermination) {
  Rng rng(3);
  CartPole env(&rng, 200);
  const auto s0 = env.Reset();
  for (const double v : s0) EXPECT_LE(std::fabs(v), 0.05);
  // Constant action must eventually tip the pole over.
  bool done = false;
  int steps = 0;
  while (!done && steps < 500) {
    const auto result = env.Step(1);
    done = result.done;
    EXPECT_DOUBLE_EQ(result.reward, 1.0);
    ++steps;
  }
  EXPECT_TRUE(done);
  EXPECT_LT(steps, 200);
}

TEST(ZooTest, HasElevenModels) {
  EXPECT_EQ(ModelZoo().size(), 11u);
  EXPECT_EQ(FindModel("LeNet").category, "CNN");
  EXPECT_EQ(FindModel("TreeLSTM").category, "TreeNN");
  EXPECT_THROW(FindModel("nope"), InvalidArgument);
}

// Parameterised sweep: every model under JANUS must convert and match the
// imperative executor's losses.
class ZooSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(ZooSweep, RunsImperatively) {
  const ModelSpec& spec = FindModel(GetParam());
  ModelSession session(spec, EngineOptions::ImperativePreset());
  for (int i = 0; i < 3; ++i) {
    const double loss = session.Step();
    EXPECT_TRUE(std::isfinite(loss)) << "step " << i;
  }
  EXPECT_EQ(session.engine().stats().graph_executions, 0);
}

TEST_P(ZooSweep, ConvertsUnderJanus) {
  const ModelSpec& spec = FindModel(GetParam());
  ModelSession session(spec, EngineOptions{});
  for (int i = 0; i < 10; ++i) {
    const double loss = session.Step();
    ASSERT_TRUE(std::isfinite(loss)) << "step " << i;
  }
  const auto& stats = session.engine().stats();
  EXPECT_GT(stats.graph_executions, 0)
      << "model never executed a converted graph";
  EXPECT_EQ(stats.not_convertible, 0) << "generator refused the model";
}

TEST_P(ZooSweep, JanusMatchesImperative) {
  const ModelSpec& spec = FindModel(GetParam());
  ModelSession janus_session(spec, EngineOptions{}, 7);
  ModelSession imperative_session(spec, EngineOptions::ImperativePreset(), 7);
  for (int i = 0; i < 8; ++i) {
    const double a = janus_session.Step();
    const double b = imperative_session.Step();
    // Same seeds, same data stream; both paths use the same gradient rules.
    EXPECT_NEAR(a, b, 5e-2 * std::max(1.0, std::fabs(b)))
        << spec.name << " diverged at step " << i;
  }
}

TEST_P(ZooSweep, BaseModeRuns) {
  const ModelSpec& spec = FindModel(GetParam());
  EngineOptions base;
  base.generator.speculative_unroll = false;
  base.generator.specialize = false;
  base.parallel_execution = false;
  ModelSession session(spec, base);
  for (int i = 0; i < 8; ++i) {
    const double loss = session.Step();
    ASSERT_TRUE(std::isfinite(loss)) << "step " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ZooSweep,
    ::testing::Values("LeNet", "ResNet50", "Inception-v3", "LSTM", "LM",
                      "TreeRNN", "TreeLSTM", "A3C", "PPO", "AN", "pix2pix"));

TEST(ZooLearningTest, LeNetAccuracyImproves) {
  ModelSession session(FindModel("LeNet"), EngineOptions{});
  const double before = session.Eval();
  for (int i = 0; i < 60; ++i) session.Step();
  const double after = session.Eval();
  EXPECT_GT(after, before + 0.2);  // well above chance by 60 steps
}

TEST(ZooLearningTest, LstmPerplexityDrops) {
  ModelSession session(FindModel("LSTM"), EngineOptions{});
  const double before = session.Eval();
  for (int i = 0; i < 200; ++i) session.Step();
  const double after = session.Eval();
  EXPECT_LT(after, before * 0.85);
}

TEST(ZooLearningTest, TreeRnnLearnsSentiment) {
  ModelSession session(FindModel("TreeRNN"), EngineOptions{});
  for (int i = 0; i < 150; ++i) session.Step();
  // Average eval accuracy over several fresh trees.
  double acc = 0;
  for (int i = 0; i < 20; ++i) acc += session.Eval();
  acc /= 20;
  EXPECT_GT(acc, 0.6);
}

}  // namespace
}  // namespace janus::models
