// Tests for the observability subsystem (src/obs): span tracer ring
// buffers and nesting, histogram bucket/percentile math, Chrome-trace JSON
// schema round trips, threaded metric accumulation, DOT heat annotation,
// and the end-to-end engine trace including a forced fallback.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "frontend/builtins.h"
#include "frontend/eager.h"
#include "graph/dot.h"
#include "obs/json_check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace janus {
namespace {

using obs::ChromeTraceSummary;
using obs::Histogram;
using obs::MetricsRegistry;
using obs::Trace;
using obs::TraceEvent;
using obs::TraceScope;

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Trace::Disable();
    Trace::Reset();
  }
  void TearDown() override {
    Trace::Disable();
    Trace::Reset();
    Trace::SetBufferCapacityForTesting(0);  // restore default
    obs::SetKernelTimingEnabled(false);
  }
};

// ---- tracer ----

TEST_F(ObsTest, DisabledTracerRecordsNoEvents) {
  ASSERT_FALSE(Trace::Enabled());
  {
    TraceScope outer("outer", "test");
    TraceScope inner("inner", "test");
    Trace::RecordInstant("marker", "test");
    Trace::RecordComplete("explicit", "test", 0, 10);
  }
  EXPECT_EQ(Trace::TotalRecorded(), 0);
  EXPECT_TRUE(Trace::Collect().empty());
  // Kernel sampling is inert too: no tracer, no kernel timing.
  EXPECT_FALSE(obs::ShouldSampleKernel());
}

TEST_F(ObsTest, ScopeRecordsCompleteEventWithArgs) {
  Trace::Enable();
  {
    TraceScope span("unit_span", "test");
    span.set_arg("items", 42);
    span.set_detail("extra");
  }
  const std::vector<TraceEvent> events = Trace::Collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "unit_span");
  EXPECT_STREQ(events[0].category, "test");
  EXPECT_EQ(events[0].phase, 'X');
  EXPECT_GE(events[0].dur_ns, 0);
  EXPECT_STREQ(events[0].arg_key, "items");
  EXPECT_EQ(events[0].arg_value, 42);
  EXPECT_EQ(events[0].detail, "extra");
}

TEST_F(ObsTest, SpanNestingAcrossThreads) {
  Trace::Enable();
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      TraceScope outer("outer_" + std::to_string(t), "nest");
      for (int i = 0; i < 3; ++i) {
        TraceScope inner("inner_" + std::to_string(t), "nest");
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const std::vector<TraceEvent> events = Trace::Collect();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads * 4));

  // Each worker got its own tracer tid, and every inner span nests inside
  // its thread's outer span.
  std::map<std::uint32_t, std::vector<const TraceEvent*>> by_tid;
  for (const TraceEvent& event : events) by_tid[event.tid].push_back(&event);
  ASSERT_EQ(by_tid.size(), static_cast<std::size_t>(kThreads));
  for (const auto& [tid, thread_events] : by_tid) {
    ASSERT_EQ(thread_events.size(), 4u);
    const TraceEvent* outer = nullptr;
    for (const TraceEvent* event : thread_events) {
      if (event->name.rfind("outer_", 0) == 0) outer = event;
    }
    ASSERT_NE(outer, nullptr);
    for (const TraceEvent* event : thread_events) {
      if (event == outer) continue;
      EXPECT_GE(event->start_ns, outer->start_ns);
      EXPECT_LE(event->start_ns + event->dur_ns,
                outer->start_ns + outer->dur_ns);
    }
  }
}

TEST_F(ObsTest, RingBufferDropsOldestBeyondCapacity) {
  Trace::SetBufferCapacityForTesting(16);
  Trace::Enable();
  // Record from a fresh thread so the shrunken capacity applies.
  std::thread recorder([] {
    for (int i = 0; i < 40; ++i) {
      Trace::RecordComplete("event_" + std::to_string(i), "ring", i, 1);
    }
  });
  recorder.join();
  EXPECT_EQ(Trace::TotalRecorded(), 40);
  EXPECT_EQ(Trace::TotalDropped(), 24);
  const std::vector<TraceEvent> events = Trace::Collect();
  ASSERT_EQ(events.size(), 16u);
  // The survivors are the newest 16, still in order.
  EXPECT_EQ(events.front().name, "event_24");
  EXPECT_EQ(events.back().name, "event_39");
}

// ---- histograms ----

TEST_F(ObsTest, HistogramBucketEdges) {
  EXPECT_EQ(Histogram::BucketFor(0), 0);
  EXPECT_EQ(Histogram::BucketFor(-5), 0);
  EXPECT_EQ(Histogram::BucketFor(1), 1);
  EXPECT_EQ(Histogram::BucketFor(2), 2);
  EXPECT_EQ(Histogram::BucketFor(3), 2);
  EXPECT_EQ(Histogram::BucketFor(4), 3);
  EXPECT_EQ(Histogram::BucketFor(1023), 10);
  EXPECT_EQ(Histogram::BucketFor(1024), 11);
  EXPECT_EQ(Histogram::BucketLowerBound(2), 2);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3);
  EXPECT_EQ(Histogram::BucketLowerBound(11), 1024);
  EXPECT_EQ(Histogram::BucketUpperBound(11), 2047);
  // Values at bucket boundaries land exactly once.
  Histogram h;
  h.Record(2);
  h.Record(3);
  h.Record(4);
  EXPECT_EQ(h.BucketCount(2), 2);
  EXPECT_EQ(h.BucketCount(3), 1);
  EXPECT_EQ(h.Count(), 3);
}

TEST_F(ObsTest, HistogramSingleValuePercentiles) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.Record(100);
  // Clamping to observed min/max makes a single-valued distribution exact
  // at every percentile, including bucket-interior values.
  EXPECT_EQ(h.Percentile(0), 100);
  EXPECT_EQ(h.Percentile(50), 100);
  EXPECT_EQ(h.Percentile(99), 100);
  EXPECT_EQ(h.Percentile(100), 100);
  EXPECT_EQ(h.Min(), 100);
  EXPECT_EQ(h.Max(), 100);
  EXPECT_DOUBLE_EQ(h.Mean(), 100.0);
}

TEST_F(ObsTest, HistogramUniformPercentiles) {
  Histogram h;
  for (std::int64_t v = 1; v <= 1024; ++v) h.Record(v);
  EXPECT_EQ(h.Count(), 1024);
  EXPECT_EQ(h.Sum(), 1024 * 1025 / 2);
  // Rank 512 is the first value of bucket [512, 1023]: exactly 512.
  EXPECT_EQ(h.Percentile(50), 512);
  // p99 (rank 1014) interpolates inside [512, 1023]; uniform data aligned
  // to the bucket makes that accurate to a few counts.
  EXPECT_NEAR(static_cast<double>(h.Percentile(99)), 1014.0, 8.0);
  // Percentiles are monotone and bounded by the observed extremes.
  std::int64_t previous = 0;
  for (const double p : {0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0}) {
    const std::int64_t value = h.Percentile(p);
    EXPECT_GE(value, previous);
    EXPECT_GE(value, h.Min());
    EXPECT_LE(value, h.Max());
    previous = value;
  }
  EXPECT_EQ(h.Percentile(100), 1024);
}

TEST_F(ObsTest, HistogramEmptyAndReset) {
  Histogram h;
  EXPECT_EQ(h.Percentile(50), 0);
  EXPECT_EQ(h.Min(), 0);
  EXPECT_EQ(h.Max(), 0);
  h.Record(7);
  EXPECT_EQ(h.Count(), 1);
  h.Reset();
  EXPECT_EQ(h.Count(), 0);
  EXPECT_EQ(h.Percentile(99), 0);
}

// ---- threaded accumulation (EngineStats/RunMetrics substrate) ----

TEST_F(ObsTest, ThreadedCounterAndHistogramStress) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIterations = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Re-resolve through the registry map each round sometimes, to
      // stress concurrent GetCounter/GetHistogram too.
      obs::Counter& counter = registry.GetCounter("stress.counter");
      Histogram& histogram = registry.GetHistogram("stress.histogram");
      for (int i = 0; i < kIterations; ++i) {
        counter.Increment();
        histogram.Record(i % 1024);
        if (i % 4096 == 0) {
          registry.GetCounter("stress.counter").Add(0);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(registry.GetCounter("stress.counter").Value(),
            static_cast<std::int64_t>(kThreads) * kIterations);
  Histogram& histogram = registry.GetHistogram("stress.histogram");
  EXPECT_EQ(histogram.Count(), static_cast<std::int64_t>(kThreads) * kIterations);
  std::int64_t expected_sum = 0;
  for (int i = 0; i < kIterations; ++i) expected_sum += i % 1024;
  EXPECT_EQ(histogram.Sum(), expected_sum * kThreads);
  EXPECT_EQ(histogram.Min(), 0);
  EXPECT_EQ(histogram.Max(), 1023);
}

// ---- Chrome-trace JSON ----

TEST_F(ObsTest, ChromeTraceJsonRoundTrip) {
  Trace::Enable();
  {
    TraceScope span("span \"quoted\\\n", "cat/one");
    span.set_arg("count", 7);
  }
  Trace::RecordInstant("instant_marker", "cat two", "detail \"x\"\t");
  Trace::RecordComplete("plain", "cat", 100, 50);

  const std::string path =
      ::testing::TempDir() + "/janus_obs_roundtrip.json";
  Trace::WriteChromeTrace(path);

  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::ostringstream content;
  content << file.rdbuf();

  std::string error;
  ChromeTraceSummary summary;
  ASSERT_TRUE(obs::ValidateChromeTrace(content.str(), &error, &summary))
      << error;
  EXPECT_EQ(summary.num_events, 3);
  // Escaped characters survive the round trip.
  EXPECT_TRUE(summary.names.count("span \"quoted\\\n") != 0u);
  EXPECT_TRUE(summary.names.count("instant_marker") != 0u);
  EXPECT_TRUE(summary.categories.count("cat two") != 0u);
  EXPECT_TRUE(summary.phases.count("X") != 0u);
  EXPECT_TRUE(summary.phases.count("i") != 0u);
  std::remove(path.c_str());
}

TEST_F(ObsTest, JsonCheckRejectsMalformedDocuments) {
  std::string error;
  EXPECT_FALSE(obs::ValidateChromeTrace("", &error));
  EXPECT_FALSE(obs::ValidateChromeTrace("{}", &error));
  EXPECT_FALSE(obs::ValidateChromeTrace("{\"traceEvents\":[{]}", &error));
  EXPECT_FALSE(obs::ValidateChromeTrace(
      R"({"traceEvents":[{"name":"a","cat":"b"}]})", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(obs::ValidateChromeTrace(
      R"({"traceEvents":[]} trailing)", &error));
  // A well-formed minimal trace passes.
  EXPECT_TRUE(obs::ValidateChromeTrace(
      R"({"traceEvents":[{"name":"a","cat":"b","ph":"X","ts":0,"dur":1}]})",
      &error))
      << error;
}

// ---- DOT heat annotation ----

TEST_F(ObsTest, DotAnnotatesPerOpTimingFromRegistry) {
  Histogram& hot =
      MetricsRegistry::Global().GetHistogram("kernel.ObsHeatHot");
  Histogram& cold =
      MetricsRegistry::Global().GetHistogram("kernel.ObsHeatCold");
  hot.Reset();
  cold.Reset();
  for (int i = 0; i < 10; ++i) hot.Record(40000);
  for (int i = 0; i < 10; ++i) cold.Record(100);

  Graph g;
  const NodeOutput c = g.Constant(Tensor::Scalar(1.0f));
  Node* hot_node = g.AddNode("ObsHeatHot", {c});
  g.AddNode("ObsHeatCold", {{hot_node, 0}});

  const std::string plain = ToDot(g, "heat");
  EXPECT_EQ(plain.find("~40.0us"), std::string::npos);

  DotOptions options;
  options.annotate_timing = true;
  const std::string annotated = ToDot(g, "heat", options);
  // Mean latency appears in the label; the hottest op gets the strongest
  // heat color, the cold op a pale one.
  EXPECT_NE(annotated.find("~40.0us"), std::string::npos);
  EXPECT_NE(annotated.find("~100ns"), std::string::npos);
  EXPECT_NE(annotated.find("#e34a33"), std::string::npos);
  EXPECT_NE(annotated.find("#fef0d9"), std::string::npos);
}

// ---- end-to-end: engine decision loop in a trace file ----

TEST_F(ObsTest, EngineTraceCapturesDecisionLoopIncludingFallback) {
  const std::string path = ::testing::TempDir() + "/janus_engine_trace.json";
  VariableStore variables;
  Rng rng(7);
  minipy::Interpreter interp(&variables, &rng);
  minipy::InstallBuiltins(interp);
  EngineOptions options;
  options.trace_path = path;  // Attach() enables, Detach() exports
  JanusEngine engine(&interp, options);
  engine.Attach();

  // Stable branch during profiling, then a flip: the speculative graph's
  // assertion fails at runtime and the engine falls back (Fig. 2 (E)).
  interp.Run(R"(
w = variable('obs_w', constant([2.0]))
mode = constant([1.0])

def loss_fn():
    h = w * 3.0
    if reduce_sum(mode) > 0.0:
        out = h * h
    else:
        out = h + 100.0
    return reduce_sum(out)

for i in range(8):
    r = float(optimize(loss_fn, 0.0))
)");
  interp.Run(R"(
mode = constant([-1.0])
for i in range(8):
    r = float(optimize(loss_fn, 0.0))
)");
  const EngineStats stats = engine.stats();
  EXPECT_GE(stats.assumption_failures, 1);
  EXPECT_GE(stats.fallbacks, 1);
  EXPECT_GE(stats.graph_executions, 1);
  EXPECT_GE(stats.graph_generations, 1);

  // The text report carries the decision-loop counters, phase histograms,
  // sampled kernel timers, and allocator traffic.
  const std::string report = engine.StatsReport();
  EXPECT_NE(report.find("engine.graph_executions"), std::string::npos);
  EXPECT_NE(report.find("engine.assumption_failures"), std::string::npos);
  EXPECT_NE(report.find("engine.imperative_ns"), std::string::npos);
  EXPECT_NE(report.find("engine.graph_execution_ns"), std::string::npos);
  EXPECT_NE(report.find("kernel."), std::string::npos);
  EXPECT_NE(report.find("buffer pool"), std::string::npos);

  engine.Detach();  // writes the Chrome trace

  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::ostringstream content;
  content << file.rdbuf();
  std::string error;
  ChromeTraceSummary summary;
  ASSERT_TRUE(obs::ValidateChromeTrace(content.str(), &error, &summary))
      << error;
  EXPECT_GT(summary.num_events, 10);
  // The acceptance set: profiling, generation, plan build, graph
  // execution, per-op kernel samples, and the forced fallback.
  EXPECT_TRUE(summary.names.count("profile") != 0u);
  EXPECT_TRUE(summary.names.count("graph_generation") != 0u);
  EXPECT_TRUE(summary.names.count("plan_build") != 0u);
  EXPECT_TRUE(summary.names.count("graph_execution") != 0u);
  EXPECT_TRUE(summary.names.count("fallback") != 0u);
  EXPECT_TRUE(summary.names.count("assumption_failure") != 0u);
  EXPECT_TRUE(summary.categories.count("kernel") != 0u);
  EXPECT_TRUE(summary.categories.count("engine") != 0u);
  std::remove(path.c_str());
}

TEST_F(ObsTest, KernelTimingWithoutTracerFillsRegistryOnly) {
  Histogram& timer = MetricsRegistry::Global().GetHistogram("kernel.Add");
  const std::int64_t count_before = timer.Count();
  obs::SetKernelTimingEnabled(true);
  ASSERT_FALSE(Trace::Enabled());
  VariableStore variables;
  Rng rng(3);
  minipy::EagerContext eager(&variables, &rng);
  const Tensor a = Tensor::Full(Shape{4, 4}, 1.0f);
  for (int i = 0; i < 64; ++i) {
    eager.Execute("Add", {a, a});
  }
  obs::SetKernelTimingEnabled(false);
  // 64 ops sampled at a jittered ~16 stride: the first op samples, and
  // every gap is < 24 (NextSampleGap draws from [8, 24)), so at least 3
  // new samples land even in the worst draw.
  EXPECT_GE(timer.Count() - count_before, 3);
  // No tracer: nothing hit the ring buffers.
  EXPECT_EQ(Trace::TotalRecorded(), 0);
}

}  // namespace
}  // namespace janus
