// Tests for the source-attributed continuous profiler (src/obs/profile,
// src/obs/pprof_encode): provenance stamping through generation, autodiff
// and fusion for every zoo model; the lock-free per-plan accumulator under
// threaded recording; the hand-rolled pprof encoder round-tripped through
// the in-repo decoder (gzip container included); the live /profilez and
// /pprof/profile endpoints scraped over a real socket; folded-stacks
// parsing; and profdiff regression detection.
#include "obs/profile.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "frontend/builtins.h"
#include "models/zoo.h"
#include "obs/http_export.h"
#include "obs/json_check.h"
#include "obs/pprof_encode.h"

namespace janus {
namespace {

using obs::DecodePprof;
using obs::DecodedPprof;
using obs::FoldedProfile;
using obs::GunzipStored;
using obs::GzipCompress;
using obs::HttpExportServer;
using obs::PlanProfile;
using obs::ProfileNodeInfo;
using obs::ProfileRegistry;
using obs::ProfileSample;

class ProfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::DisableProfiling();
    ProfileRegistry::Global().Reset();
  }
  void TearDown() override {
    obs::DisableProfiling();
    ProfileRegistry::Global().Reset();
  }
};

// Interpreter + engine pair (mirrors janus_test.cc's Session).
struct Session {
  explicit Session(EngineOptions options = EngineOptions{})
      : rng(17), interp(&variables, &rng), engine(&interp, options) {
    minipy::InstallBuiltins(interp);
    engine.Attach();
  }
  VariableStore variables;
  Rng rng;
  minipy::Interpreter interp;
  JanusEngine engine;
};

constexpr const char* kTrainingScript = R"(
w = variable('w', constant([[0.5], [0.25]]))
x = constant([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
def loss_fn():
    h = matmul(x, w)
    return reduce_mean(h * h)
for i in range(24):
    optimize(loss_fn, 0.01)
)";

// ---- provenance through generation + autodiff + fusion (zoo sweep) ----

class ZooProvenance : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override { ProfileRegistry::Global().Reset(); }
  void TearDown() override { ProfileRegistry::Global().Reset(); }
};

TEST_P(ZooProvenance, EveryPlanNodeCarriesASourceSite) {
  const models::ModelSpec& spec = models::FindModel(GetParam());
  models::ModelSession session(spec, EngineOptions{});
  for (int i = 0; i < 12; ++i) session.Step();

  // Every engine-generated plan (unit-keyed at BuildPlans) must attribute
  // all of its nodes — including autodiff-cloned gradient nodes and every
  // member of a fused region — back to an imperative source site.
  int unit_plans = 0;
  int nodes_checked = 0;
  for (const auto& profile : ProfileRegistry::Global().Profiles()) {
    if (profile->unit().empty()) continue;
    ++unit_plans;
    for (const ProfileNodeInfo& info : profile->nodes()) {
      ++nodes_checked;
      EXPECT_TRUE(info.site.known())
          << spec.name << ": node '" << info.name << "' (" << info.op
          << ") in unit '" << profile->unit() << "' has no source site";
      for (const ProfileNodeInfo& member : info.members) {
        ++nodes_checked;
        EXPECT_TRUE(member.site.known())
            << spec.name << ": fused member '" << member.name << "' ("
            << member.op << ") has no source site";
      }
    }
  }
  if (session.engine().stats().graph_executions > 0) {
    EXPECT_GT(unit_plans, 0) << "converted model registered no keyed plans";
    EXPECT_GT(nodes_checked, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ZooProvenance,
    ::testing::Values("LeNet", "ResNet50", "Inception-v3", "LSTM", "LM",
                      "TreeRNN", "TreeLSTM", "A3C", "PPO", "AN", "pix2pix"));

// ---- end-to-end accumulation against a live engine ----

TEST_F(ProfileTest, EngineRunAccumulatesSourceAttributedSamples) {
  obs::EnableProfiling();
  Session session;
  session.interp.Run(kTrainingScript);
  ASSERT_GT(session.engine.stats().graph_executions, 0);

  const std::vector<ProfileSample> samples = obs::CollectProfileSamples();
  ASSERT_FALSE(samples.empty());
  bool found_attributed = false;
  for (const ProfileSample& sample : samples) {
    if (sample.unit == "loss_fn" && sample.count > 0 &&
        !sample.function.empty() && sample.line > 0) {
      found_attributed = true;
      EXPECT_EQ(sample.function, "loss_fn");
    }
  }
  EXPECT_TRUE(found_attributed)
      << "no sampled node attributed to loss_fn source";

  // Unit totals carry the engine-side phase accounting.
  bool found_unit = false;
  for (const obs::ProfileUnitTotals& unit :
       obs::CollectProfileUnitTotals()) {
    if (unit.unit != "loss_fn") continue;
    found_unit = true;
    EXPECT_EQ(unit.variant.rfind("training(", 0), 0u) << unit.variant;
    EXPECT_GT(unit.runs, 0u);
    EXPECT_GT(unit.generation_ns, 0);
  }
  EXPECT_TRUE(found_unit);

  // The renderers agree with the validator.
  std::string error;
  obs::ProfileJsonSummary summary;
  ASSERT_TRUE(obs::ValidateProfileJson(obs::RenderProfileJson(), &error,
                                       &summary))
      << error;
  EXPECT_TRUE(summary.enabled);
  EXPECT_EQ(summary.sample_stride,
            static_cast<int>(obs::kProfileSampleEvery));
  EXPECT_NE(summary.units.count("loss_fn"), 0u);
  const std::string text = obs::RenderProfileText();
  EXPECT_NE(text.find("loss_fn"), std::string::npos);
  EXPECT_NE(text.find("== by source line =="), std::string::npos);
}

TEST_F(ProfileTest, DisabledProfilingRecordsNoSamples) {
  ASSERT_FALSE(obs::ProfilingEnabled());
  Session session;
  session.interp.Run(kTrainingScript);
  for (const ProfileSample& sample : obs::CollectProfileSamples()) {
    EXPECT_EQ(sample.count, 0u) << sample.node;
  }
}

// ---- threaded accumulator ----

TEST_F(ProfileTest, ThreadedRecordingLosesNoCountsOrTime) {
  std::vector<ProfileNodeInfo> infos(4);
  for (int i = 0; i < 4; ++i) {
    infos[static_cast<std::size_t>(i)].name = "n" + std::to_string(i);
  }
  PlanProfile profile(std::move(infos));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&profile, t] {
      for (int i = 0; i < kPerThread; ++i) {
        profile.Record(i % 4, (i % 100) + t);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  std::uint64_t total_count = 0;
  for (int i = 0; i < 4; ++i) {
    const PlanProfile::NodeSnapshot snap = profile.Snapshot(i);
    EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kPerThread / 4);
    total_count += snap.count;
    // max = largest duration any thread recorded on this slot.
    EXPECT_GE(snap.max_ns, 99u);
    std::uint64_t bucket_sum = 0;
    for (const std::uint64_t b : snap.buckets) bucket_sum += b;
    EXPECT_EQ(bucket_sum, snap.count) << "histogram lost samples";
  }
  EXPECT_EQ(total_count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  // Out-of-range indices are ignored, not UB.
  profile.Record(-1, 5);
  profile.Record(4, 5);
}

// ---- pprof encoding: gzip container + protobuf round-trip ----

TEST_F(ProfileTest, GzipRoundTripsIncludingMultiBlockAndEmpty) {
  for (const std::size_t size : {std::size_t{0}, std::size_t{1},
                                 std::size_t{65535}, std::size_t{200000}}) {
    std::string raw(size, '\0');
    for (std::size_t i = 0; i < size; ++i) {
      raw[i] = static_cast<char>((i * 131 + 17) & 0xff);
    }
    const std::string gz = GzipCompress(raw);
    ASSERT_GE(gz.size(), 18u);
    EXPECT_EQ(static_cast<unsigned char>(gz[0]), 0x1f);
    EXPECT_EQ(static_cast<unsigned char>(gz[1]), 0x8b);
    std::string out;
    std::string error;
    ASSERT_TRUE(GunzipStored(gz, &out, &error)) << error;
    EXPECT_EQ(out, raw);
  }
  // Corruption is detected via CRC.
  std::string gz = GzipCompress("hello profiler");
  gz[12] ^= 0x01;
  std::string out;
  std::string error;
  EXPECT_FALSE(GunzipStored(gz, &out, &error));
}

TEST_F(ProfileTest, PprofEncodingRoundTripsThroughDecoder) {
  std::vector<ProfileSample> samples(2);
  samples[0].unit = "loss_fn";
  samples[0].variant = "training(lr=0.010000)";
  samples[0].level = 1;
  samples[0].function = "loss_fn";
  samples[0].line = 3;
  samples[0].op = "MatMul";
  samples[0].node = "MatMul_1";
  samples[0].count = 42;
  samples[0].total_ns = 123456;
  samples[1].unit = "loss_fn";
  samples[1].variant = "training(lr=0.010000)";
  samples[1].function = "loss_fn";
  samples[1].line = 4;
  samples[1].op = "Mul";
  samples[1].node = "Mul_2";
  samples[1].count = 7;
  samples[1].total_ns = 999;

  const std::string proto = obs::EncodeProfileProto(samples);
  // Deterministic encoder: same input, same bytes.
  EXPECT_EQ(proto, obs::EncodeProfileProto(samples));

  DecodedPprof decoded;
  std::string error;
  ASSERT_TRUE(DecodePprof(proto, &decoded, &error)) << error;
  ASSERT_EQ(decoded.sample_types.size(), 2u);
  EXPECT_EQ(decoded.sample_types[0].first, "executions");
  EXPECT_EQ(decoded.sample_types[1].first, "time");
  EXPECT_EQ(decoded.sample_types[1].second, "nanoseconds");
  ASSERT_EQ(decoded.samples.size(), 2u);

  // Leaf-first stack: op, then function:line, then the function frame.
  const DecodedPprof::Sample& first = decoded.samples[0];
  ASSERT_EQ(first.stack.size(), 3u);
  EXPECT_EQ(first.stack[0], "MatMul");
  EXPECT_EQ(first.stack[1], "loss_fn:3");
  EXPECT_EQ(first.stack[2], "loss_fn");
  ASSERT_EQ(first.values.size(), 2u);
  EXPECT_EQ(first.values[0], 42);
  EXPECT_EQ(first.values[1], 123456);
  EXPECT_EQ(first.labels.at("unit"), "loss_fn");
  EXPECT_EQ(first.labels.at("node"), "MatMul_1");

  // The gzip wrapper decodes transparently too.
  DecodedPprof via_gzip;
  ASSERT_TRUE(DecodePprof(GzipCompress(proto), &via_gzip, &error)) << error;
  EXPECT_EQ(via_gzip.samples.size(), 2u);
}

// ---- live socket scrape of /profilez and /pprof/profile ----

TEST_F(ProfileTest, HttpEndpointsServeProfileAndPprof) {
  obs::EnableProfiling();
  Session session;
  session.interp.Run(kTrainingScript);

  HttpExportServer& server = HttpExportServer::Global();
  ASSERT_TRUE(server.Start(0));  // free port
  ASSERT_GT(server.port(), 0);

  const auto http_get = [&](const std::string& path) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(server.port()));
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
        0);
    const std::string request =
        "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
    ::send(fd, request.data(), request.size(), MSG_NOSIGNAL);
    std::string response;
    char buffer[4096];
    for (;;) {
      const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
      if (n <= 0) break;
      response.append(buffer, static_cast<std::size_t>(n));
    }
    ::close(fd);
    const std::size_t split = response.find("\r\n\r\n");
    EXPECT_NE(split, std::string::npos) << path;
    EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << path;
    return split == std::string::npos ? std::string()
                                      : response.substr(split + 4);
  };

  const std::string text = http_get("/profilez");
  EXPECT_NE(text.find("loss_fn"), std::string::npos);

  const std::string json = http_get("/profilez?format=json");
  std::string error;
  obs::ProfileJsonSummary summary;
  ASSERT_TRUE(obs::ValidateProfileJson(json, &error, &summary)) << error;
  EXPECT_NE(summary.units.count("loss_fn"), 0u);

  // Binary-safe: the gzipped pprof body survives HTTP framing intact.
  const std::string pprof_body = http_get("/pprof/profile");
  ASSERT_GE(pprof_body.size(), 2u);
  EXPECT_EQ(static_cast<unsigned char>(pprof_body[0]), 0x1f);
  EXPECT_EQ(static_cast<unsigned char>(pprof_body[1]), 0x8b);
  DecodedPprof decoded;
  ASSERT_TRUE(DecodePprof(pprof_body, &decoded, &error)) << error;
  bool found_loss_fn_stack = false;
  for (const DecodedPprof::Sample& sample : decoded.samples) {
    if (sample.labels.count("unit") != 0u &&
        sample.labels.at("unit") == "loss_fn" && sample.stack.size() == 3 &&
        sample.stack[2] == "loss_fn") {
      found_loss_fn_stack = true;
    }
  }
  EXPECT_TRUE(found_loss_fn_stack)
      << "no function->line->op stack for loss_fn in live pprof scrape";

  server.Stop();
}

// ---- folded stacks + profdiff ----

TEST_F(ProfileTest, FoldedStacksRenderWriteAndParse) {
  obs::EnableProfiling();
  Session session;
  session.interp.Run(kTrainingScript);

  const std::string folded = obs::RenderFoldedStacks();
  ASSERT_FALSE(folded.empty());
  FoldedProfile parsed;
  std::string error;
  ASSERT_TRUE(obs::ParseFoldedProfile(folded, &parsed, &error)) << error;
  EXPECT_GT(parsed.total_ns, 0.0);
  bool found = false;
  for (const auto& [stack, ns] : parsed.stack_ns) {
    if (stack.rfind("loss_fn;", 0) == 0) found = true;
  }
  EXPECT_TRUE(found) << "no stack rooted at the unit name";

  // WriteFoldedStacks (the JANUS_PROFILE exit path) round-trips via file.
  const std::string path =
      ::testing::TempDir() + "/profile_test_folded.txt";
  obs::WriteFoldedStacks(path);
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::string content;
  char buffer[4096];
  std::size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    content.append(buffer, n);
  }
  std::fclose(file);
  std::remove(path.c_str());
  FoldedProfile from_file;
  ASSERT_TRUE(obs::ParseFoldedProfile(content, &from_file, &error)) << error;
  EXPECT_EQ(from_file.stack_ns.size(), parsed.stack_ns.size());
}

TEST_F(ProfileTest, ParseFoldedProfileRejectsMalformedInput) {
  FoldedProfile out;
  std::string error;
  EXPECT_FALSE(obs::ParseFoldedProfile("stack_without_value\n", &out, &error));
  EXPECT_FALSE(obs::ParseFoldedProfile("a;b not_a_number\n", &out, &error));
  EXPECT_FALSE(obs::ParseFoldedProfile("a;b -5\n", &out, &error));
  ASSERT_TRUE(obs::ParseFoldedProfile("a;b;Op 10\na;b;Op 5\nc;d;Op 5\n",
                                      &out, &error))
      << error;
  EXPECT_DOUBLE_EQ(out.stack_ns.at("a;b;Op"), 15.0);  // duplicates sum
  EXPECT_DOUBLE_EQ(out.total_ns, 20.0);
}

TEST_F(ProfileTest, ProfDiffFlagsShareRegressionsBySite) {
  FoldedProfile before;
  std::string error;
  ASSERT_TRUE(obs::ParseFoldedProfile(
      "unit;fn;fn:3;MatMul 800\nunit;fn;fn:4;Mul 200\n", &before, &error));
  // After: fn:4 grew from 20% to 60% of total; fn:3 shrank. Absolute times
  // doubled everywhere, which share-based diffing ignores.
  FoldedProfile after;
  ASSERT_TRUE(obs::ParseFoldedProfile(
      "unit;fn;fn:3;MatMul 1600\nunit;fn;fn:4;Mul 2400\n", &after, &error));

  const obs::ProfileDiffResult diff = obs::DiffProfilesBySite(before, after);
  ASSERT_FALSE(diff.entries.empty());
  // Sorted by delta descending: the regressing site leads.
  EXPECT_EQ(diff.entries.front().site, "unit;fn;fn:4");
  EXPECT_NEAR(diff.entries.front().delta_pp, 40.0, 1e-9);
  EXPECT_NEAR(diff.max_regression_pp, 40.0, 1e-9);
  // The leaf op frame is folded away: two ops on one line are one site.
  for (const obs::ProfileDiffEntry& entry : diff.entries) {
    EXPECT_EQ(entry.site.find("MatMul"), std::string::npos);
  }

  // A uniform scale-up is not a regression.
  const obs::ProfileDiffResult same = obs::DiffProfilesBySite(before, before);
  EXPECT_NEAR(same.max_regression_pp, 0.0, 1e-9);
}

}  // namespace
}  // namespace janus
