// End-to-end tests of the JANUS engine: profiling, speculative graph
// generation, caching, assumption validation, fallback, deferred state
// update, shape relaxation (Fig. 4), recursion, BASE-mode lowering, and the
// tracing baseline's deliberate incorrectness.
#include "core/engine.h"

#include <gtest/gtest.h>

#include "frontend/builtins.h"

namespace janus {
namespace {

using minipy::Interpreter;
using minipy::Value;

class JanusTest : public ::testing::Test {
 protected:
  // Builds a fresh interpreter + engine with the given options.
  struct Session {
    Session(EngineOptions options, std::uint64_t seed = 17)
        : rng(seed), interp(&variables, &rng), engine(&interp, options) {
      minipy::InstallBuiltins(interp);
      engine.Attach();
    }
    VariableStore variables;
    Rng rng;
    Interpreter interp;
    JanusEngine engine;

    double Num(const std::string& global) {
      const Value v = interp.GetGlobal(global);
      if (const auto* t = std::get_if<Tensor>(&v)) return t->ElementAsDouble(0);
      if (const auto* d = std::get_if<double>(&v)) return *d;
      if (const auto* i = std::get_if<std::int64_t>(&v)) {
        return static_cast<double>(*i);
      }
      if (const auto* b = std::get_if<bool>(&v)) return *b ? 1 : 0;
      ADD_FAILURE() << "global " << global << " is not numeric";
      return 0;
    }
  };
};

// A linear-regression training program exercising the basic conversion path.
constexpr const char* kLinearProgram = R"(
w = variable('w', constant([[0.2]]))
b = variable('b', constant([0.0]))
x = constant([[1.0], [2.0], [3.0], [4.0]])
y = constant([[2.5], [4.5], [6.5], [8.5]])

def loss_fn():
    pred = matmul(x, w) + b
    err = pred - y
    return reduce_mean(err * err)

losses = []
for i in range(30):
    losses.append(float(optimize(loss_fn, 0.04)))
first = losses[0]
last = losses[29]
)";

TEST_F(JanusTest, ConvertsAndTrainsLinearModel) {
  Session session(EngineOptions{});
  session.interp.Run(kLinearProgram);
  EXPECT_LT(session.Num("last"), session.Num("first") * 0.05);
  const auto& stats = session.engine.stats();
  // 3 profiled imperative steps, then graph executions.
  EXPECT_EQ(stats.imperative_executions, 3);
  EXPECT_EQ(stats.graph_generations, 1);
  EXPECT_EQ(stats.graph_executions, 27);
  EXPECT_EQ(stats.assumption_failures, 0);
}

TEST_F(JanusTest, GraphModeMatchesImperativeMode) {
  Session janus_session(EngineOptions{});
  Session imperative_session(EngineOptions::ImperativePreset());
  janus_session.interp.Run(kLinearProgram);
  imperative_session.interp.Run(kLinearProgram);
  EXPECT_NEAR(janus_session.Num("last"), imperative_session.Num("last"),
              1e-4);
  // Learned parameters agree too.
  const float wj = janus_session.variables.Read("w").data<float>()[0];
  const float wi = imperative_session.variables.Read("w").data<float>()[0];
  EXPECT_NEAR(wj, wi, 1e-4f);
  EXPECT_EQ(imperative_session.engine.stats().graph_executions, 0);
}

TEST_F(JanusTest, StableBranchIsSpeculatedThenFallsBackOnFlip) {
  // The branch direction is stable during profiling, then flips: the
  // speculative graph's AssertOp must fail, execution falls back, and a
  // relaxed (dynamic-branch) graph takes over — Fig. 2 (E).
  constexpr const char* program = R"(
w = variable('sw', constant([2.0]))
mode = constant([1.0])

def loss_fn():
    h = w * 3.0
    if reduce_sum(mode) > 0.0:
        out = h * h
    else:
        out = h + 100.0
    return reduce_sum(out)

r1 = 0.0
for i in range(8):
    r1 = float(optimize(loss_fn, 0.0))
)";
  Session session(EngineOptions{});
  session.interp.Run(program);
  EXPECT_NEAR(session.Num("r1"), 36.0, 1e-3);
  const auto stats_before = session.engine.stats();
  EXPECT_GE(stats_before.graph_executions, 4);
  EXPECT_EQ(stats_before.assumption_failures, 0);

  // Flip the branch: mode becomes negative.
  session.interp.Run(R"(
mode = constant([-1.0])
r2 = 0.0
for i in range(8):
    r2 = float(optimize(loss_fn, 0.0))
r3 = float(optimize(loss_fn, 0.0))
)");
  EXPECT_NEAR(session.Num("r2"), 106.0, 1e-3);
  const auto& stats = session.engine.stats();
  EXPECT_GE(stats.assumption_failures, 1);
  EXPECT_GE(stats.fallbacks, 1);
  // After relaxation the dynamic-branch graph executes without failures.
  EXPECT_GT(stats.graph_executions, stats_before.graph_executions);
}

TEST_F(JanusTest, Fig1StatePassingMatchesImperative) {
  // The paper's Figure 1 pattern: attribute state carried across calls via
  // deferred PyGetAttr/PySetAttr.
  constexpr const char* program = R"(
class RNNModel:
    def __init__(self):
        self.state = constant([[0.5, 0.5]])
        self.w = variable('fig1_w', constant([[0.3, 0.1], [0.2, 0.4]]))
    def __call__(self, item):
        state = tanh(matmul(self.state, self.w) + item)
        self.state = state
        return reduce_mean(state * state)

model = RNNModel()
items = [constant([[1.0, 0.0]]), constant([[0.0, 1.0]])]
total = 0.0
for i in range(10):
    for item in items:
        total = total + float(optimize(lambda: model(item), 0.05))
final_state = reduce_sum(model.state)
)";
  Session janus_session(EngineOptions{});
  Session imperative_session(EngineOptions::ImperativePreset());
  janus_session.interp.Run(program);
  imperative_session.interp.Run(program);
  EXPECT_NEAR(janus_session.Num("total"), imperative_session.Num("total"),
              2e-3);
  EXPECT_NEAR(janus_session.Num("final_state"),
              imperative_session.Num("final_state"), 1e-3);
  EXPECT_GT(janus_session.engine.stats().graph_executions, 0);
}

TEST_F(JanusTest, ShapeRelaxationFollowsFig4) {
  // Shapes (4,2) for a while, then (3,2): first generation pins (4,2); the
  // (3,2) batch misses, regenerates with (?,2); a later (2,2) batch then
  // hits the relaxed graph without another generation.
  constexpr const char* program = R"(
w = variable('rw', constant([[1.0], [1.0]]))
batch = zeros([4, 2])

def loss_fn():
    return reduce_mean(matmul(batch, w))

for i in range(6):
    optimize(loss_fn, 0.0)
)";
  Session session(EngineOptions{});
  session.interp.Run(program);
  const auto gen_after_first = session.engine.stats().graph_generations;
  EXPECT_EQ(gen_after_first, 1);

  session.interp.Run(R"(
batch = zeros([3, 2])
for i in range(3):
    optimize(loss_fn, 0.0)
)");
  const auto gen_after_relax = session.engine.stats().graph_generations;
  EXPECT_EQ(gen_after_relax, 2);  // one regeneration with relaxed shape

  session.interp.Run(R"(
batch = zeros([2, 2])
for i in range(3):
    optimize(loss_fn, 0.0)
)");
  // The (?,2) graph covers the new batch size: no further generation.
  EXPECT_EQ(session.engine.stats().graph_generations, gen_after_relax);
}

TEST_F(JanusTest, UnconvertibleFunctionStaysImperative) {
  constexpr const char* program = R"(
w = variable('uw', constant([1.0]))
def loss_fn():
    try:
        x = w * 2.0
    except Error:
        x = w
    return reduce_sum(x)

out = 0.0
for i in range(8):
    out = float(optimize(loss_fn, 0.0))
)";
  Session session(EngineOptions{});
  session.interp.Run(program);
  EXPECT_NEAR(session.Num("out"), 2.0, 1e-5);
  const auto& stats = session.engine.stats();
  EXPECT_EQ(stats.graph_executions, 0);
  EXPECT_GE(stats.not_convertible, 1);
  EXPECT_EQ(stats.imperative_executions, 8);
}

TEST_F(JanusTest, TracingBakesStateWritesAndJanusDoesNot) {
  // State accumulation: each step doubles self.scale. Tracing bakes the
  // traced value and drops the write; JANUS tracks it correctly.
  constexpr const char* program = R"(
class Model:
    def __init__(self):
        self.scale = constant([1.0])
    def step(self):
        self.scale = self.scale * 2.0
        return reduce_sum(self.scale)

m = Model()
out = 0.0
for i in range(6):
    out = float(optimize(lambda: m.step(), 0.0))
)";
  Session janus_session(EngineOptions{});
  janus_session.interp.Run(program);
  EXPECT_NEAR(janus_session.Num("out"), 64.0, 1e-3);  // 2^6

  Session tracing_session(EngineOptions::TracingPreset());
  tracing_session.interp.Run(program);
  // First call is imperative (scale -> 2); every traced execution returns
  // the baked value and never updates the state: silently wrong.
  EXPECT_NEAR(tracing_session.Num("out"), 4.0, 1e-3);
  EXPECT_GT(tracing_session.engine.stats().graph_executions, 0);
}

TEST_F(JanusTest, TracingMisbakesBranchJanusAsserts) {
  // Batch-norm-style training/eval flag: tracing converts the first trace's
  // branch and silently keeps it; JANUS guards it with an AssertOp and
  // falls back correctly when the flag flips.
  constexpr const char* program = R"(
class Net:
    def __init__(self):
        self.training = True
    def forward(self, x):
        if self.training:
            return reduce_sum(x * 2.0)
        return reduce_sum(x * 1000.0)

net = Net()
data = constant([1.0, 2.0])

def loss_fn():
    return net.forward(data)

train_out = 0.0
for i in range(6):
    train_out = float(optimize(loss_fn, 0.0))
net.training = False
eval_out = float(optimize(loss_fn, 0.0))
)";
  Session janus_session(EngineOptions{});
  janus_session.interp.Run(program);
  EXPECT_NEAR(janus_session.Num("train_out"), 6.0, 1e-3);
  EXPECT_NEAR(janus_session.Num("eval_out"), 3000.0, 1e-3);

  Session tracing_session(EngineOptions::TracingPreset());
  tracing_session.interp.Run(program);
  EXPECT_NEAR(tracing_session.Num("train_out"), 6.0, 1e-3);
  // Tracing baked self.training == True: eval silently wrong.
  EXPECT_NEAR(tracing_session.Num("eval_out"), 6.0, 1e-3);
}

TEST_F(JanusTest, RecursiveTreeFunctionConverts) {
  // TreeRNN-style recursion over per-sample tree objects: dynamic object
  // pointers, PyGetAttr type dispatch, InvokeOp recursion, and training.
  constexpr const char* program = R"(
class Node:
    def __init__(self, is_leaf, emb, left, right):
        self.is_leaf = is_leaf
        self.emb = emb
        self.left = left
        self.right = right

w = variable('tree_w', constant([[0.5, 0.1], [0.2, 0.3]]))

def embed(node):
    if node.is_leaf == 1:
        return node.emb
    a = embed(node.left)
    b = embed(node.right)
    return tanh(matmul(a + b, w))

def make_leaf(v):
    return Node(1, constant([v]), None, None)

def make_pair(l, r):
    return Node(0, None, l, r)

tree_a = make_pair(make_leaf([1.0, 0.0]), make_leaf([0.0, 1.0]))
tree_b = make_pair(make_pair(make_leaf([1.0, 1.0]), make_leaf([0.5, 0.5])),
                   make_leaf([0.2, 0.8]))
trees = [tree_a, tree_b]

current = tree_a

def loss_fn():
    out = embed(current)
    return reduce_mean(out * out)

losses = []
for i in range(8):
    for t in trees:
        current = t
        losses.append(float(optimize(loss_fn, 0.02)))
n = len(losses)
last = losses[15]
)";
  Session janus_session(EngineOptions{});
  Session imperative_session(EngineOptions::ImperativePreset());
  janus_session.interp.Run(program);
  imperative_session.interp.Run(program);
  EXPECT_EQ(janus_session.Num("n"), 16);
  EXPECT_NEAR(janus_session.Num("last"), imperative_session.Num("last"),
              2e-3);
  EXPECT_GT(janus_session.engine.stats().graph_executions, 0);
  EXPECT_EQ(janus_session.engine.stats().not_convertible, 0);
}

TEST_F(JanusTest, BaseModeLowersLoopToFunctionalWhile) {
  // With speculative unrolling disabled (BASE of Fig. 7), a data-dependent
  // range loop becomes a functional While — and still trains correctly.
  constexpr const char* program = R"(
w = variable('bw', constant([1.5]))
steps = constant_int(5)

def loss_fn():
    acc = w * 1.0
    for i in range(int(reduce_sum(cast_float(steps)))):
        acc = acc * 0.5
    return reduce_sum(acc)

out = 0.0
for i in range(8):
    out = float(optimize(loss_fn, 0.0))
)";
  EngineOptions base;
  base.generator.speculative_unroll = false;
  base.generator.specialize = false;
  base.parallel_execution = false;
  Session session(base);
  session.interp.Run(program);
  EXPECT_NEAR(session.Num("out"), 1.5 * std::pow(0.5, 5), 1e-4);
  EXPECT_GT(session.engine.stats().graph_executions, 0);
  EXPECT_EQ(session.engine.stats().not_convertible, 0);
}

TEST_F(JanusTest, ParallelExecutionMatchesSequential) {
  EngineOptions sequential;
  sequential.parallel_execution = false;
  Session seq_session(sequential);
  Session par_session(EngineOptions{});
  seq_session.interp.Run(kLinearProgram);
  par_session.interp.Run(kLinearProgram);
  EXPECT_NEAR(seq_session.Num("last"), par_session.Num("last"), 1e-5);
}

TEST_F(JanusTest, MarkedInferenceFunctionIsConverted) {
  constexpr const char* program = R"(
w = variable('iw', constant([[2.0, 0.0], [0.0, 3.0]]))

def predict(x):
    return reduce_sum(matmul(x, w))

predict = janus_function(predict)
data = constant([[1.0, 1.0]])
out = 0.0
for i in range(8):
    out = float(predict(data))
)";
  Session session(EngineOptions{});
  session.interp.Run(program);
  EXPECT_NEAR(session.Num("out"), 5.0, 1e-4);
  EXPECT_GT(session.engine.stats().graph_executions, 0);
}

TEST_F(JanusTest, AssertionsCanBeDisabled) {
  EngineOptions no_asserts;
  no_asserts.generator.insert_assertions = false;
  Session session(no_asserts);
  session.interp.Run(kLinearProgram);
  EXPECT_LT(session.Num("last"), session.Num("first") * 0.05);
}

TEST_F(JanusTest, DeferredPrintOnlyOnSuccess) {
  // print inside a converted function is buffered and committed; this just
  // exercises the PyPrint path end-to-end.
  constexpr const char* program = R"(
w = variable('pw', constant([1.0]))
def loss_fn():
    loss = reduce_sum(w * w)
    print('loss is', loss)
    return loss
for i in range(5):
    optimize(loss_fn, 0.0)
)";
  Session session(EngineOptions{});
  testing::internal::CaptureStdout();
  session.interp.Run(program);
  const std::string output = testing::internal::GetCapturedStdout();
  // 5 executions, 5 printed lines (imperative and graph mode alike).
  EXPECT_EQ(std::count(output.begin(), output.end(), '\n'), 5);
  EXPECT_NE(output.find("loss is"), std::string::npos);
}

}  // namespace
}  // namespace janus
