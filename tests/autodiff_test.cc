// Tests for symbolic reverse-mode autodiff. Most tests verify analytic
// gradients against central finite differences on randomly perturbed inputs;
// structural tests cover conditionals (Switch/Merge), functional While
// loops, and recursive Invoke gradients.
#include "autodiff/gradients.h"

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "runtime/executor.h"
#include "tensor/ops.h"

namespace janus {
namespace {

class AutodiffTest : public ::testing::Test {
 protected:
  // Builds a graph with one float placeholder "x" of the given shape via
  // `body`, appends gradients of the scalar loss w.r.t. x, and compares the
  // symbolic gradient against central finite differences.
  void CheckGradient(
      const Shape& x_shape,
      const std::function<NodeOutput(Graph&, NodeOutput)>& body,
      float tolerance = 2e-2f, std::uint64_t seed = 1234) {
    Graph g;
    const NodeOutput x = g.Placeholder("x", DType::kFloat32);
    const NodeOutput loss = body(g, x);
    const std::vector<NodeOutput> targets{x};
    const std::vector<NodeOutput> grads =
        AddGradients(g, library_, loss, targets);

    Rng rng(seed);
    Tensor x0 = ops::RandomUniform(x_shape, 0.2f, 1.2f, rng);

    Executor executor(&library_, &variables_, nullptr, &rng_);
    const auto eval_loss = [&](const Tensor& xv) {
      const auto out = executor.Run(g, {{"x", xv}},
                                    std::vector<NodeOutput>{loss});
      return out[0].ScalarValue();
    };

    const auto out = executor.Run(
        g, {{"x", x0}}, std::vector<NodeOutput>{loss, grads[0]});
    const Tensor analytic = out[1];
    ASSERT_EQ(analytic.shape(), x_shape);

    const float eps = 1e-2f;
    const auto base = x0.data<float>();
    for (std::int64_t i = 0; i < x0.num_elements(); ++i) {
      Tensor plus = Tensor::FromVector(
          std::vector<float>(base.begin(), base.end()), x_shape);
      Tensor minus = Tensor::FromVector(
          std::vector<float>(base.begin(), base.end()), x_shape);
      plus.mutable_data<float>()[static_cast<std::size_t>(i)] += eps;
      minus.mutable_data<float>()[static_cast<std::size_t>(i)] -= eps;
      const float fd = (eval_loss(plus) - eval_loss(minus)) / (2 * eps);
      const float an = analytic.data<float>()[static_cast<std::size_t>(i)];
      EXPECT_NEAR(an, fd, tolerance * std::max(1.0f, std::fabs(fd)))
          << "element " << i;
    }
  }

  FunctionLibrary library_;
  VariableStore variables_;
  Rng rng_{7};
};

NodeOutput MeanAll(Graph& g, NodeOutput v) {
  return {g.AddNode("ReduceMean", {v},
                    {{"axes", std::vector<std::int64_t>{}},
                     {"keep_dims", false}}),
          0};
}

NodeOutput SumAll(Graph& g, NodeOutput v) {
  return {g.AddNode("ReduceSum", {v},
                    {{"axes", std::vector<std::int64_t>{}},
                     {"keep_dims", false}}),
          0};
}

TEST_F(AutodiffTest, SquareLoss) {
  CheckGradient(Shape{4}, [](Graph& g, NodeOutput x) {
    return SumAll(g, {g.AddNode("Square", {x}), 0});
  });
}

TEST_F(AutodiffTest, AddWithBroadcastConstant) {
  CheckGradient(Shape{2, 3}, [](Graph& g, NodeOutput x) {
    const NodeOutput c =
        g.Constant(Tensor::FromVector({1, 2, 3}, Shape{3}));
    const NodeOutput s = {g.AddNode("Add", {x, c}), 0};
    return SumAll(g, {g.AddNode("Square", {s}), 0});
  });
}

TEST_F(AutodiffTest, MulChain) {
  CheckGradient(Shape{3}, [](Graph& g, NodeOutput x) {
    const NodeOutput y = {g.AddNode("Mul", {x, x}), 0};
    const NodeOutput z = {g.AddNode("Mul", {y, x}), 0};  // x^3
    return SumAll(g, z);
  });
}

TEST_F(AutodiffTest, DivGradient) {
  CheckGradient(Shape{3}, [](Graph& g, NodeOutput x) {
    const NodeOutput c = g.Constant(Tensor::FromVector({2, 3, 4}, Shape{3}));
    const NodeOutput q = {g.AddNode("Div", {c, x}), 0};
    return SumAll(g, q);
  });
}

TEST_F(AutodiffTest, PowGradient) {
  CheckGradient(Shape{3}, [](Graph& g, NodeOutput x) {
    const NodeOutput e = g.Constant(Tensor::Scalar(3.0f));
    return SumAll(g, {g.AddNode("Pow", {x, e}), 0});
  });
}

TEST_F(AutodiffTest, ExpLogSqrtChain) {
  CheckGradient(Shape{3}, [](Graph& g, NodeOutput x) {
    const NodeOutput e = {g.AddNode("Exp", {x}), 0};
    const NodeOutput l = {g.AddNode("Log", {e}), 0};
    const NodeOutput s = {g.AddNode("Sqrt", {l}), 0};
    return SumAll(g, s);
  });
}

TEST_F(AutodiffTest, ActivationGradients) {
  for (const char* act : {"Tanh", "Sigmoid", "Relu"}) {
    CheckGradient(Shape{5}, [act](Graph& g, NodeOutput x) {
      return SumAll(g, {g.AddNode(act, {x}), 0});
    });
  }
}

TEST_F(AutodiffTest, MaximumGradientRoutesToLarger) {
  CheckGradient(Shape{4}, [](Graph& g, NodeOutput x) {
    const NodeOutput c = g.Constant(Tensor::Full(Shape{4}, 0.7f));
    return SumAll(g, {g.AddNode("Maximum", {x, c}), 0});
  });
}

TEST_F(AutodiffTest, MatMulGradient) {
  CheckGradient(Shape{2, 3}, [](Graph& g, NodeOutput x) {
    const NodeOutput w = g.Constant(
        Tensor::FromVector({0.5f, -0.2f, 0.1f, 0.4f, -0.3f, 0.2f}, Shape{3, 2}));
    const NodeOutput y = {g.AddNode("MatMul", {x, w}), 0};
    return SumAll(g, {g.AddNode("Square", {y}), 0});
  });
}

TEST_F(AutodiffTest, TransposeGradient) {
  CheckGradient(Shape{2, 3}, [](Graph& g, NodeOutput x) {
    const NodeOutput t = {g.AddNode("Transpose", {x}), 0};
    const NodeOutput w = g.Constant(
        Tensor::FromVector({1, 2, 3, 4, 5, 6}, Shape{2, 3}));
    const NodeOutput p = {g.AddNode("MatMul", {t, w}), 0};
    return SumAll(g, p);
  });
}

TEST_F(AutodiffTest, ReshapeGradient) {
  CheckGradient(Shape{2, 3}, [](Graph& g, NodeOutput x) {
    const NodeOutput r = {g.AddNode("Reshape", {x},
                                    {{"shape", std::vector<std::int64_t>{6}}}),
                          0};
    return SumAll(g, {g.AddNode("Square", {r}), 0});
  });
}

TEST_F(AutodiffTest, ReduceMeanGradient) {
  CheckGradient(Shape{2, 4}, [](Graph& g, NodeOutput x) {
    const NodeOutput m = {g.AddNode("ReduceMean", {x},
                                    {{"axes", std::vector<std::int64_t>{1}},
                                     {"keep_dims", false}}),
                          0};
    return SumAll(g, {g.AddNode("Square", {m}), 0});
  });
}

TEST_F(AutodiffTest, ReduceMaxGradient) {
  CheckGradient(Shape{6}, [](Graph& g, NodeOutput x) {
    return NodeOutput{g.AddNode("ReduceMax", {x},
                                {{"axes", std::vector<std::int64_t>{}},
                                 {"keep_dims", false}}),
                      0};
  });
}

TEST_F(AutodiffTest, SoftmaxGradient) {
  CheckGradient(Shape{2, 3}, [](Graph& g, NodeOutput x) {
    const NodeOutput sm = {g.AddNode("Softmax", {x}), 0};
    const NodeOutput w = g.Constant(
        Tensor::FromVector({1, -2, 3, 0.5f, 1, -1}, Shape{2, 3}));
    return SumAll(g, {g.AddNode("Mul", {sm, w}), 0});
  });
}

TEST_F(AutodiffTest, LogSoftmaxGradient) {
  CheckGradient(Shape{2, 3}, [](Graph& g, NodeOutput x) {
    const NodeOutput ls = {g.AddNode("LogSoftmax", {x}), 0};
    const NodeOutput w = g.Constant(
        Tensor::FromVector({1, 0, 2, -1, 1, 0.5f}, Shape{2, 3}));
    return SumAll(g, {g.AddNode("Mul", {ls, w}), 0});
  });
}

TEST_F(AutodiffTest, SoftmaxCrossEntropyGradient) {
  CheckGradient(Shape{3, 4}, [](Graph& g, NodeOutput x) {
    const NodeOutput labels =
        g.Constant(Tensor::FromVectorInt({0, 2, 3}, Shape{3}));
    const NodeOutput losses = {
        g.AddNode("SoftmaxCrossEntropy", {x, labels}), 0};
    return MeanAll(g, losses);
  });
}

TEST_F(AutodiffTest, ConcatAndSliceGradients) {
  CheckGradient(Shape{2, 2}, [](Graph& g, NodeOutput x) {
    const NodeOutput c = g.Constant(Tensor::Full(Shape{2, 2}, 0.5f));
    const NodeOutput cat = {
        g.AddNode("Concat", {x, c}, {{"axis", std::int64_t{1}}}), 0};
    const NodeOutput sl = {
        g.AddNode("Slice", {cat},
                  {{"begin", std::vector<std::int64_t>{0, 1}},
                   {"size", std::vector<std::int64_t>{2, 2}}}),
        0};
    return SumAll(g, {g.AddNode("Square", {sl}), 0});
  });
}

TEST_F(AutodiffTest, StackUnstackGradient) {
  CheckGradient(Shape{3}, [](Graph& g, NodeOutput x) {
    const NodeOutput c = g.Constant(Tensor::Full(Shape{3}, 2.0f));
    const NodeOutput st = {g.AddNode("Stack", {x, c, x}), 0};
    return SumAll(g, {g.AddNode("Square", {st}), 0});
  });
}

TEST_F(AutodiffTest, GatherGradient) {
  CheckGradient(Shape{4, 2}, [](Graph& g, NodeOutput x) {
    const NodeOutput ids =
        g.Constant(Tensor::FromVectorInt({1, 1, 3}, Shape{3}));
    const NodeOutput rows = {g.AddNode("Gather", {x, ids}), 0};
    return SumAll(g, {g.AddNode("Square", {rows}), 0});
  });
}

TEST_F(AutodiffTest, SelectGradient) {
  CheckGradient(Shape{4}, [](Graph& g, NodeOutput x) {
    const NodeOutput mask = g.Constant([] {
      Tensor t(DType::kBool, Shape{4});
      auto d = t.mutable_data<std::uint8_t>();
      d[0] = 1; d[1] = 0; d[2] = 1; d[3] = 0;
      return t;
    }());
    const NodeOutput other = g.Constant(Tensor::Full(Shape{4}, 3.0f));
    const NodeOutput sel = {g.AddNode("Select", {mask, x, other}), 0};
    return SumAll(g, {g.AddNode("Square", {sel}), 0});
  });
}

TEST_F(AutodiffTest, Conv2DGradient) {
  CheckGradient(
      Shape{1, 4, 4, 1},
      [](Graph& g, NodeOutput x) {
        const NodeOutput f = g.Constant(Tensor::FromVector(
            {0.5f, -0.25f, 0.125f, 0.75f}, Shape{2, 2, 1, 1}));
        const NodeOutput conv = {
            g.AddNode("Conv2D", {x, f},
                      {{"stride", std::int64_t{1}},
                       {"padding", std::string("VALID")}}),
            0};
        return SumAll(g, {g.AddNode("Square", {conv}), 0});
      },
      3e-2f);
}

TEST_F(AutodiffTest, MaxPoolGradient) {
  // Max pooling is non-smooth at ties; evaluate the analytic gradient on a
  // fixed input with well-separated window values instead of via finite
  // differences on random data.
  Graph g;
  const NodeOutput x = g.Placeholder("x", DType::kFloat32);
  const NodeOutput p = {g.AddNode("MaxPool2D", {x},
                                  {{"window", std::int64_t{2}},
                                   {"stride", std::int64_t{2}}}),
                        0};
  const NodeOutput loss = SumAll(g, {g.AddNode("Square", {p}), 0});
  const std::vector<NodeOutput> targets{x};
  const auto grads = AddGradients(g, library_, loss, targets);
  const Tensor input = Tensor::FromVector(
      {1, 2, 3, 4, 8, 7, 6, 5, 9, 10, 11, 12, 16, 15, 14, 13},
      Shape{1, 4, 4, 1});
  Executor executor(&library_, &variables_, nullptr, &rng_);
  const auto out = executor.Run(g, {{"x", input}},
                                std::vector<NodeOutput>{grads[0]});
  // Window maxima: 8, 6, 16, 14. d(sum(p^2))/dmax = 2*max, zero elsewhere.
  const std::vector<float> expected = {0, 0, 0, 0, 16, 0, 12, 0,
                                       0, 0, 0, 0, 32, 0, 28, 0};
  const auto gv = out[0].data<float>();
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_FLOAT_EQ(gv[i], expected[i]) << "element " << i;
  }
}

TEST_F(AutodiffTest, AvgPoolGradient) {
  CheckGradient(Shape{1, 4, 4, 1}, [](Graph& g, NodeOutput x) {
    const NodeOutput p = {g.AddNode("AvgPool2D", {x},
                                    {{"window", std::int64_t{2}},
                                     {"stride", std::int64_t{2}}}),
                          0};
    return SumAll(g, {g.AddNode("Square", {p}), 0});
  });
}

TEST_F(AutodiffTest, UnreachedTargetGetsZeros) {
  Graph g;
  const NodeOutput x = g.Placeholder("x", DType::kFloat32);
  const NodeOutput y = g.Placeholder("y", DType::kFloat32);
  const NodeOutput loss = SumAll(g, {g.AddNode("Square", {x}), 0});
  const std::vector<NodeOutput> targets{x, y};
  const auto grads = AddGradients(g, library_, loss, targets);
  Executor executor(&library_, &variables_, nullptr, &rng_);
  const auto out = executor.Run(
      g,
      {{"x", Tensor::FromVector({1, 2}, Shape{2})},
       {"y", Tensor::FromVector({5, 5, 5}, Shape{3})}},
      std::vector<NodeOutput>{grads[0], grads[1]});
  EXPECT_FLOAT_EQ(out[0].data<float>()[0], 2.0f);
  EXPECT_FLOAT_EQ(out[1].data<float>()[1], 0.0f);
  EXPECT_EQ(out[1].shape(), (Shape{3}));
}

TEST_F(AutodiffTest, FanOutAccumulatesGradients) {
  // loss = x*x + 3x  =>  d/dx = 2x + 3.
  Graph g;
  const NodeOutput x = g.Placeholder("x", DType::kFloat32);
  const NodeOutput sq = {g.AddNode("Mul", {x, x}), 0};
  const NodeOutput three = g.Constant(Tensor::Scalar(3));
  const NodeOutput lin = {g.AddNode("Mul", {x, three}), 0};
  const NodeOutput loss = {g.AddNode("Add", {sq, lin}), 0};
  const std::vector<NodeOutput> targets{x};
  const auto grads = AddGradients(g, library_, loss, targets);
  Executor executor(&library_, &variables_, nullptr, &rng_);
  const auto out = executor.Run(g, {{"x", Tensor::Scalar(5)}},
                                std::vector<NodeOutput>{grads[0]});
  EXPECT_FLOAT_EQ(out[0].ScalarValue(), 13.0f);
}

TEST_F(AutodiffTest, ConditionalGradientFollowsTakenBranch) {
  // loss = pred ? x^2 : 3x. Gradient must be 2x on the true branch and 3 on
  // the false branch — Switch/Merge gradient routing with deadness.
  Graph g;
  const NodeOutput pred = g.Placeholder("pred", DType::kBool);
  const NodeOutput x = g.Placeholder("x", DType::kFloat32);
  Node* sw = g.AddNode("Switch", {x, pred}, {}, 2);
  const NodeOutput sq = {g.AddNode("Mul", {{sw, 1}, {sw, 1}}), 0};
  const NodeOutput three = g.Constant(Tensor::Scalar(3));
  const NodeOutput lin = {g.AddNode("Mul", {{sw, 0}, three}), 0};
  Node* merge = g.AddNode("Merge", {sq, lin}, {}, 2);
  const std::vector<NodeOutput> targets{x};
  const auto grads =
      AddGradients(g, library_, NodeOutput{merge, 0}, targets);

  Executor executor(&library_, &variables_, nullptr, &rng_);
  const auto t = executor.Run(g,
                              {{"pred", Tensor::ScalarBool(true)},
                               {"x", Tensor::Scalar(4)}},
                              std::vector<NodeOutput>{grads[0]});
  EXPECT_FLOAT_EQ(t[0].ScalarValue(), 8.0f);
  const auto f = executor.Run(g,
                              {{"pred", Tensor::ScalarBool(false)},
                               {"x", Tensor::Scalar(4)}},
                              std::vector<NodeOutput>{grads[0]});
  EXPECT_FLOAT_EQ(f[0].ScalarValue(), 3.0f);
}

TEST_F(AutodiffTest, FunctionalWhileGradient) {
  // y = x * 2^n via a While loop; dy/dx = 2^n.
  auto cond = std::make_unique<GraphFunction>();
  cond->name = "ad_cond";
  {
    Graph& cg = cond->graph;
    Node* i = cg.AddNode("Param", {}, {{"index", std::int64_t{0}}});
    Node* v = cg.AddNode("Param", {}, {{"index", std::int64_t{1}}});
    Node* n = cg.AddNode("Param", {}, {{"index", std::int64_t{2}}});
    (void)v;
    Node* lt = cg.AddNode("Less", {{i, 0}, {n, 0}});
    cond->parameters = {i, v, n};
    cond->results = {{lt, 0}};
  }
  library_.Register(std::move(cond));

  auto body = std::make_unique<GraphFunction>();
  body->name = "ad_body";
  {
    Graph& bg = body->graph;
    Node* i = bg.AddNode("Param", {}, {{"index", std::int64_t{0}}});
    Node* v = bg.AddNode("Param", {}, {{"index", std::int64_t{1}}});
    Node* n = bg.AddNode("Param", {}, {{"index", std::int64_t{2}}});
    (void)n;
    Node* one = bg.AddNode("Const", {}, {{"value", Tensor::ScalarInt(1)}});
    Node* ip1 = bg.AddNode("Add", {{i, 0}, {one, 0}});
    Node* two = bg.AddNode("Const", {}, {{"value", Tensor::Scalar(2)}});
    Node* v2 = bg.AddNode("Mul", {{v, 0}, {two, 0}});
    body->parameters = {i, v, n};
    body->results = {{ip1, 0}, {v2, 0}};
  }
  library_.Register(std::move(body));

  Graph g;
  const NodeOutput x = g.Placeholder("x", DType::kFloat32);
  const NodeOutput i0 = g.Constant(Tensor::ScalarInt(0));
  const NodeOutput n = g.Constant(Tensor::ScalarInt(5));
  Node* loop = g.AddNode("While", {i0, x, n},
                         {{"cond_fn", std::string("ad_cond")},
                          {"body_fn", std::string("ad_body")},
                          {"num_carried", std::int64_t{2}}},
                         2);
  const std::vector<NodeOutput> targets{x};
  const auto grads =
      AddGradients(g, library_, NodeOutput{loop, 1}, targets);
  Executor executor(&library_, &variables_, nullptr, &rng_);
  const auto out = executor.Run(g, {{"x", Tensor::Scalar(1.5f)}},
                                std::vector<NodeOutput>{{loop, 1}, grads[0]});
  EXPECT_FLOAT_EQ(out[0].ScalarValue(), 1.5f * 32);
  EXPECT_FLOAT_EQ(out[1].ScalarValue(), 32.0f);
}

TEST_F(AutodiffTest, RecursiveInvokeGradient) {
  // f(x, k) = k == 0 ? 1 : x * f(x, k-1)  =>  f = x^k, df/dx = k x^(k-1).
  auto fn = std::make_unique<GraphFunction>();
  fn->name = "ad_powrec";
  {
    Graph& fg = fn->graph;
    Node* x = fg.AddNode("Param", {}, {{"index", std::int64_t{0}}});
    Node* k = fg.AddNode("Param", {}, {{"index", std::int64_t{1}}});
    Node* zero = fg.AddNode("Const", {}, {{"value", Tensor::ScalarInt(0)}});
    Node* is_base = fg.AddNode("LessEqual", {{k, 0}, {zero, 0}});
    Node* sw_x = fg.AddNode("Switch", {{x, 0}, {is_base, 0}}, {}, 2);
    Node* sw_k = fg.AddNode("Switch", {{k, 0}, {is_base, 0}}, {}, 2);
    // Base: 1 (float, shaped like x's true-side value).
    Node* base = fg.AddNode("OnesLike", {{sw_x, 1}});
    // Recursive: x * f(x, k-1).
    Node* one = fg.AddNode("Const", {}, {{"value", Tensor::ScalarInt(1)}});
    Node* km1 = fg.AddNode("Sub", {{sw_k, 0}, {one, 0}});
    Node* rec = fg.AddNode("Invoke", {{sw_x, 0}, {km1, 0}},
                           {{"function", std::string("ad_powrec")}});
    Node* prod = fg.AddNode("Mul", {{sw_x, 0}, {rec, 0}});
    Node* merge = fg.AddNode("Merge", {{base, 0}, {prod, 0}}, {}, 2);
    fn->parameters = {x, k};
    fn->results = {{merge, 0}};
  }
  library_.Register(std::move(fn));

  Graph g;
  const NodeOutput x = g.Placeholder("x", DType::kFloat32);
  const NodeOutput k = g.Constant(Tensor::ScalarInt(3));
  Node* call = g.AddNode("Invoke", {x, k},
                         {{"function", std::string("ad_powrec")}});
  const std::vector<NodeOutput> targets{x};
  const auto grads =
      AddGradients(g, library_, NodeOutput{call, 0}, targets);
  Executor executor(&library_, &variables_, nullptr, &rng_);
  const auto out = executor.Run(g, {{"x", Tensor::Scalar(2.0f)}},
                                std::vector<NodeOutput>{{call, 0}, grads[0]});
  EXPECT_FLOAT_EQ(out[0].ScalarValue(), 8.0f);
  EXPECT_FLOAT_EQ(out[1].ScalarValue(), 12.0f);  // 3 * 2^2
}

TEST_F(AutodiffTest, FramePrimitivesRejected) {
  Graph g;
  const NodeOutput x = g.Placeholder("x", DType::kFloat32);
  Node* enter = g.AddNode("Enter", {x}, {{"frame", std::string("f")}});
  Node* exit = g.AddNode("Exit", {{enter, 0}});
  const std::vector<NodeOutput> targets{x};
  EXPECT_THROW(
      AddGradients(g, library_, NodeOutput{exit, 0}, targets),
      NotConvertible);
}

TEST_F(AutodiffTest, GradientFunctionIsCachedInLibrary) {
  auto fn = std::make_unique<GraphFunction>();
  fn->name = "ad_sq";
  {
    Graph& fg = fn->graph;
    Node* x = fg.AddNode("Param", {}, {{"index", std::int64_t{0}}});
    Node* sq = fg.AddNode("Square", {{x, 0}});
    fn->parameters = {x};
    fn->results = {{sq, 0}};
  }
  const GraphFunction& registered = library_.Register(std::move(fn));
  const GraphFunction& g1 = EnsureGradientFunction(library_, registered);
  const GraphFunction& g2 = EnsureGradientFunction(library_, registered);
  EXPECT_EQ(&g1, &g2);
  EXPECT_EQ(g1.name, "ad_sq__grad");
  EXPECT_EQ(g1.parameters.size(), 2u);  // x and dy
  EXPECT_EQ(g1.results.size(), 1u);     // dx
}

}  // namespace
}  // namespace janus
