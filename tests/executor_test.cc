// Tests for the dataflow executor: DAG scheduling (sequential + parallel),
// control-flow frames (Switch/Merge/Enter/Exit/NextIteration), deadness
// propagation, InvokeOp recursion, functional While, variables, assertion
// aborts, and deferred state commit.
#include "runtime/executor.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "runtime/run_context.h"
#include "tensor/ops.h"

namespace janus {
namespace {

class FakeHostState : public StateInterface {
 public:
  Tensor GetAttr(std::int64_t object_id, const std::string& name) override {
    reads.push_back(name);
    return attrs.at({object_id, name});
  }
  void SetAttr(std::int64_t object_id, const std::string& name,
               const Tensor& value) override {
    attrs[{object_id, name}] = value;
    writes.push_back(name);
  }
  Tensor GetSubscr(std::int64_t object_id, std::int64_t index) override {
    return subscrs.at({object_id, index});
  }
  void SetSubscr(std::int64_t object_id, std::int64_t index,
                 const Tensor& value) override {
    subscrs[{object_id, index}] = value;
  }

  std::map<std::pair<std::int64_t, std::string>, Tensor> attrs;
  std::map<std::pair<std::int64_t, std::int64_t>, Tensor> subscrs;
  std::vector<std::string> reads;
  std::vector<std::string> writes;
};

class ExecutorTest : public ::testing::Test {
 protected:
  std::vector<Tensor> Run(const Graph& g, std::vector<NodeOutput> fetches,
                          const std::map<std::string, Tensor>& feeds = {}) {
    Executor executor(&library_, &variables_, &host_, &rng_);
    return executor.Run(g, feeds, fetches);
  }

  FunctionLibrary library_;
  VariableStore variables_;
  FakeHostState host_;
  Rng rng_{42};
};

TEST_F(ExecutorTest, ConstantArithmetic) {
  Graph g;
  const NodeOutput a = g.Constant(Tensor::Scalar(2));
  const NodeOutput b = g.Constant(Tensor::Scalar(3));
  Node* add = g.AddNode("Add", {a, b});
  Node* sq = g.AddNode("Square", {{add, 0}});
  const auto out = Run(g, {{sq, 0}});
  EXPECT_FLOAT_EQ(out[0].ScalarValue(), 25.0f);
}

TEST_F(ExecutorTest, PlaceholderFeeding) {
  Graph g;
  const NodeOutput x = g.Placeholder("x", DType::kFloat32);
  Node* twice = g.AddNode("Add", {x, x});
  const auto out = Run(g, {{twice, 0}}, {{"x", Tensor::Scalar(21)}});
  EXPECT_FLOAT_EQ(out[0].ScalarValue(), 42.0f);
}

TEST_F(ExecutorTest, MissingFeedThrows) {
  Graph g;
  const NodeOutput x = g.Placeholder("x", DType::kFloat32);
  EXPECT_THROW(Run(g, {x}), InvalidArgument);
}

TEST_F(ExecutorTest, MultipleFetches) {
  Graph g;
  const NodeOutput a = g.Constant(Tensor::Scalar(2));
  Node* neg = g.AddNode("Neg", {a});
  Node* sq = g.AddNode("Square", {a});
  const auto out = Run(g, {{neg, 0}, {sq, 0}});
  EXPECT_FLOAT_EQ(out[0].ScalarValue(), -2.0f);
  EXPECT_FLOAT_EQ(out[1].ScalarValue(), 4.0f);
}

TEST_F(ExecutorTest, DiamondDependency) {
  Graph g;
  const NodeOutput x = g.Constant(Tensor::Scalar(3));
  Node* left = g.AddNode("Square", {x});
  Node* right = g.AddNode("Neg", {x});
  Node* join = g.AddNode("Add", {{left, 0}, {right, 0}});
  const auto out = Run(g, {{join, 0}});
  EXPECT_FLOAT_EQ(out[0].ScalarValue(), 6.0f);
}

TEST_F(ExecutorTest, ParallelDagMatchesSequential) {
  Graph g;
  const NodeOutput x = g.Placeholder("x", DType::kFloat32);
  // A wide fan-out of independent chains joined at the end.
  std::vector<NodeOutput> chain_ends;
  for (int i = 0; i < 16; ++i) {
    NodeOutput v = x;
    for (int j = 0; j < 5; ++j) {
      v = {g.AddNode("Add", {v, g.Constant(Tensor::Scalar(1))}), 0};
    }
    chain_ends.push_back(v);
  }
  Node* sum = g.AddNode("AddN", chain_ends);
  const std::map<std::string, Tensor> feeds{{"x", Tensor::Scalar(2)}};

  Executor seq(&library_, &variables_, &host_, &rng_);
  const auto a = seq.Run(g, feeds, std::vector<NodeOutput>{{sum, 0}});

  ThreadPool pool(4);
  Executor par(&library_, &variables_, &host_, &rng_, {true, &pool});
  const auto b = par.Run(g, feeds, std::vector<NodeOutput>{{sum, 0}});
  EXPECT_FLOAT_EQ(a[0].ScalarValue(), b[0].ScalarValue());
  EXPECT_FLOAT_EQ(a[0].ScalarValue(), 16 * (2 + 5));
}

TEST_F(ExecutorTest, ParallelDagPropagatesException) {
  Graph g;
  const NodeOutput x = g.Placeholder("missing", DType::kFloat32);
  Node* neg = g.AddNode("Neg", {x});
  ThreadPool pool(2);
  Executor par(&library_, &variables_, &host_, &rng_, {true, &pool});
  EXPECT_THROW(
      par.Run(g, {}, std::vector<NodeOutput>{{neg, 0}}),
      InvalidArgument);
}

TEST_F(ExecutorTest, ControlDependencyOrdersExecution) {
  // AssignVariable must run before ReadVariable via a control edge: since
  // assignments are staged, the read sees the staged value.
  variables_.Assign("v", Tensor::Scalar(1));
  Graph g;
  const NodeOutput ten = g.Constant(Tensor::Scalar(10));
  Node* assign = g.AddNode("AssignVariable", {ten}, {{"var", std::string("v")}});
  Node* read = g.AddNode("ReadVariable", {}, {{"var", std::string("v")}});
  read->AddControlInput(assign);
  const auto out = Run(g, {{read, 0}});
  EXPECT_FLOAT_EQ(out[0].ScalarValue(), 10.0f);
  // And the commit wrote the store.
  EXPECT_FLOAT_EQ(variables_.Read("v").ScalarValue(), 10.0f);
}

// ---- Control flow: Switch/Merge conditional ----

// Builds cond ? (x*3) : (x+100) with Switch/Merge primitives.
struct CondGraph {
  Graph g;
  NodeOutput pred, x;
  Node* merge;
};

CondGraph BuildCond() {
  CondGraph c;
  c.pred = c.g.Placeholder("pred", DType::kBool);
  c.x = c.g.Placeholder("x", DType::kFloat32);
  Node* sw = c.g.AddNode("Switch", {c.x, c.pred}, {}, 2);
  // output 1 = true branch, output 0 = false branch.
  Node* times3 =
      c.g.AddNode("Mul", {{sw, 1}, c.g.Constant(Tensor::Scalar(3))});
  Node* plus100 =
      c.g.AddNode("Add", {{sw, 0}, c.g.Constant(Tensor::Scalar(100))});
  c.merge = c.g.AddNode("Merge", {{times3, 0}, {plus100, 0}}, {}, 2);
  return c;
}

TEST_F(ExecutorTest, SwitchMergeTrueBranch) {
  CondGraph c = BuildCond();
  const auto out = Run(c.g, {{c.merge, 0}},
                       {{"pred", Tensor::ScalarBool(true)},
                        {"x", Tensor::Scalar(5)}});
  EXPECT_FLOAT_EQ(out[0].ScalarValue(), 15.0f);
}

TEST_F(ExecutorTest, SwitchMergeFalseBranch) {
  CondGraph c = BuildCond();
  const auto out = Run(c.g, {{c.merge, 0}},
                       {{"pred", Tensor::ScalarBool(false)},
                        {"x", Tensor::Scalar(5)}});
  EXPECT_FLOAT_EQ(out[0].ScalarValue(), 105.0f);
}

TEST_F(ExecutorTest, MergeReportsTakenIndex) {
  CondGraph c = BuildCond();
  const auto out = Run(c.g, {{c.merge, 1}},
                       {{"pred", Tensor::ScalarBool(false)},
                        {"x", Tensor::Scalar(5)}});
  EXPECT_EQ(out[0].ScalarIntValue(), 1);  // second Merge input won
}

TEST_F(ExecutorTest, DeadBranchKernelsNotExecuted) {
  // The untaken branch must not run its kernels: put an Assert(false) there.
  Graph g;
  const NodeOutput pred = g.Placeholder("pred", DType::kBool);
  const NodeOutput x = g.Placeholder("x", DType::kFloat32);
  Node* sw = g.AddNode("Switch", {x, pred}, {}, 2);
  const NodeOutput fail_const = g.Constant(Tensor::ScalarBool(false));
  Node* poison = g.AddNode("Assert", {fail_const},
                           {{"assumption", std::string("poison")}});
  // Tie the poison op into the false branch via a control edge so it is only
  // reachable (live) when the false branch is taken.
  Node* false_side = g.AddNode("Identity", {{sw, 0}});
  poison->AddControlInput(false_side);
  Node* true_side = g.AddNode("Identity", {{sw, 1}});
  Node* merge = g.AddNode("Merge", {{true_side, 0}, {poison, 0}}, {}, 2);
  // True path: poison is dead, execution succeeds.
  const auto out = Run(g, {{merge, 0}},
                       {{"pred", Tensor::ScalarBool(true)},
                        {"x", Tensor::Scalar(1)}});
  EXPECT_FLOAT_EQ(out[0].ScalarValue(), 1.0f);
}

// ---- Control flow: dataflow while loop with frames ----

// Builds the classic counting loop: i = 0; while (i < n) i = i + 1; fetch i.
struct LoopGraph {
  Graph g;
  Node* exit;
};

LoopGraph BuildCountingLoop() {
  LoopGraph l;
  const NodeOutput zero = l.g.Constant(Tensor::ScalarInt(0));
  const NodeOutput n = l.g.Placeholder("n", DType::kInt64);
  Node* enter_i =
      l.g.AddNode("Enter", {zero}, {{"frame", std::string("loop")}});
  Node* enter_n = l.g.AddNode(
      "Enter", {n}, {{"frame", std::string("loop")}, {"is_constant", true}});
  Node* merge = l.g.AddNode("Merge", {{enter_i, 0}, {enter_i, 0}}, {}, 2);
  Node* less = l.g.AddNode("Less", {{merge, 0}, {enter_n, 0}});
  Node* sw = l.g.AddNode("Switch", {{merge, 0}, {less, 0}}, {}, 2);
  Node* one = l.g.AddNode("Const", {}, {{"value", Tensor::ScalarInt(1)}});
  Node* inc = l.g.AddNode("Add", {{sw, 1}, {one, 0}});
  Node* next = l.g.AddNode("NextIteration", {{inc, 0}});
  merge->set_input(1, {next, 0});
  l.exit = l.g.AddNode("Exit", {{sw, 0}});
  return l;
}

TEST_F(ExecutorTest, WhileLoopCountsToN) {
  LoopGraph l = BuildCountingLoop();
  const auto out =
      Run(l.g, {{l.exit, 0}}, {{"n", Tensor::ScalarInt(7)}});
  EXPECT_EQ(out[0].ScalarIntValue(), 7);
}

TEST_F(ExecutorTest, WhileLoopZeroIterations) {
  LoopGraph l = BuildCountingLoop();
  const auto out =
      Run(l.g, {{l.exit, 0}}, {{"n", Tensor::ScalarInt(0)}});
  EXPECT_EQ(out[0].ScalarIntValue(), 0);
}

TEST_F(ExecutorTest, WhileLoopManyIterations) {
  LoopGraph l = BuildCountingLoop();
  const auto out =
      Run(l.g, {{l.exit, 0}}, {{"n", Tensor::ScalarInt(200)}});
  EXPECT_EQ(out[0].ScalarIntValue(), 200);
}

TEST_F(ExecutorTest, NestedFramesViaAccumulatingLoop) {
  // acc = 0; for i in [0,n): acc += i  =>  n*(n-1)/2, with two loop-carried
  // values through the same frame.
  Graph g;
  const NodeOutput zero_i = g.Constant(Tensor::ScalarInt(0));
  const NodeOutput zero_acc = g.Constant(Tensor::ScalarInt(0));
  const NodeOutput n = g.Placeholder("n", DType::kInt64);
  Node* enter_i = g.AddNode("Enter", {zero_i}, {{"frame", std::string("L")}});
  Node* enter_acc =
      g.AddNode("Enter", {zero_acc}, {{"frame", std::string("L")}});
  Node* enter_n = g.AddNode(
      "Enter", {n}, {{"frame", std::string("L")}, {"is_constant", true}});
  Node* merge_i = g.AddNode("Merge", {{enter_i, 0}, {enter_i, 0}}, {}, 2);
  Node* merge_acc =
      g.AddNode("Merge", {{enter_acc, 0}, {enter_acc, 0}}, {}, 2);
  Node* less = g.AddNode("Less", {{merge_i, 0}, {enter_n, 0}});
  Node* sw_i = g.AddNode("Switch", {{merge_i, 0}, {less, 0}}, {}, 2);
  Node* sw_acc = g.AddNode("Switch", {{merge_acc, 0}, {less, 0}}, {}, 2);
  Node* one = g.AddNode("Const", {}, {{"value", Tensor::ScalarInt(1)}});
  Node* inc = g.AddNode("Add", {{sw_i, 1}, {one, 0}});
  Node* acc2 = g.AddNode("Add", {{sw_acc, 1}, {sw_i, 1}});
  Node* next_i = g.AddNode("NextIteration", {{inc, 0}});
  Node* next_acc = g.AddNode("NextIteration", {{acc2, 0}});
  merge_i->set_input(1, {next_i, 0});
  merge_acc->set_input(1, {next_acc, 0});
  Node* exit_acc = g.AddNode("Exit", {{sw_acc, 0}});
  const auto out =
      Run(g, {{exit_acc, 0}}, {{"n", Tensor::ScalarInt(10)}});
  EXPECT_EQ(out[0].ScalarIntValue(), 45);
}

// ---- Invoke: function calls and recursion ----

TEST_F(ExecutorTest, InvokeSimpleFunction) {
  auto fn = std::make_unique<GraphFunction>();
  fn->name = "double";
  Node* p = fn->graph.AddNode("Param", {}, {{"index", std::int64_t{0}}});
  Node* d = fn->graph.AddNode("Add", {{p, 0}, {p, 0}});
  fn->parameters = {p};
  fn->results = {{d, 0}};
  library_.Register(std::move(fn));

  Graph g;
  const NodeOutput x = g.Constant(Tensor::Scalar(4));
  Node* call = g.AddNode("Invoke", {x}, {{"function", std::string("double")}});
  const auto out = Run(g, {{call, 0}});
  EXPECT_FLOAT_EQ(out[0].ScalarValue(), 8.0f);
}

TEST_F(ExecutorTest, InvokeRecursiveFactorial) {
  // fact(n) = n <= 1 ? 1 : n * fact(n-1), with Switch/Merge inside the
  // function body and a recursive Invoke.
  auto fn = std::make_unique<GraphFunction>();
  fn->name = "fact";
  Graph& fg = fn->graph;
  Node* n = fg.AddNode("Param", {}, {{"index", std::int64_t{0}}});
  Node* one = fg.AddNode("Const", {}, {{"value", Tensor::ScalarInt(1)}});
  Node* le = fg.AddNode("LessEqual", {{n, 0}, {one, 0}});
  Node* sw = fg.AddNode("Switch", {{n, 0}, {le, 0}}, {}, 2);
  // Base case (true side): 1.
  Node* base = fg.AddNode("OnesLike", {{sw, 1}});
  // Recursive case (false side): n * fact(n - 1).
  Node* nm1 = fg.AddNode("Sub", {{sw, 0}, {one, 0}});
  Node* rec = fg.AddNode("Invoke", {{nm1, 0}},
                         {{"function", std::string("fact")}});
  Node* prod = fg.AddNode("Mul", {{sw, 0}, {rec, 0}});
  Node* merge = fg.AddNode("Merge", {{base, 0}, {prod, 0}}, {}, 2);
  fn->parameters = {n};
  fn->results = {{merge, 0}};
  library_.Register(std::move(fn));

  Graph g;
  const NodeOutput five = g.Constant(Tensor::ScalarInt(5));
  Node* call = g.AddNode("Invoke", {five}, {{"function", std::string("fact")}});
  const auto out = Run(g, {{call, 0}});
  EXPECT_EQ(out[0].ScalarIntValue(), 120);
}

// ---- Functional While ----

TEST_F(ExecutorTest, FunctionalWhileRunsBodyUntilCondFalse) {
  // carried: (i, acc); captures: (n). body: (i+1, acc*2).
  auto cond = std::make_unique<GraphFunction>();
  cond->name = "w_cond";
  {
    Graph& cg = cond->graph;
    Node* i = cg.AddNode("Param", {}, {{"index", std::int64_t{0}}});
    Node* acc = cg.AddNode("Param", {}, {{"index", std::int64_t{1}}});
    Node* n = cg.AddNode("Param", {}, {{"index", std::int64_t{2}}});
    (void)acc;
    Node* lt = cg.AddNode("Less", {{i, 0}, {n, 0}});
    cond->parameters = {i, acc, n};
    cond->results = {{lt, 0}};
  }
  library_.Register(std::move(cond));

  auto body = std::make_unique<GraphFunction>();
  body->name = "w_body";
  {
    Graph& bg = body->graph;
    Node* i = bg.AddNode("Param", {}, {{"index", std::int64_t{0}}});
    Node* acc = bg.AddNode("Param", {}, {{"index", std::int64_t{1}}});
    Node* n = bg.AddNode("Param", {}, {{"index", std::int64_t{2}}});
    (void)n;
    Node* one = bg.AddNode("Const", {}, {{"value", Tensor::ScalarInt(1)}});
    Node* ip1 = bg.AddNode("Add", {{i, 0}, {one, 0}});
    Node* two = bg.AddNode("Const", {}, {{"value", Tensor::Scalar(2)}});
    Node* acc2 = bg.AddNode("Mul", {{acc, 0}, {two, 0}});
    body->parameters = {i, acc, n};
    body->results = {{ip1, 0}, {acc2, 0}};
  }
  library_.Register(std::move(body));

  Graph g;
  const NodeOutput i0 = g.Constant(Tensor::ScalarInt(0));
  const NodeOutput acc0 = g.Constant(Tensor::Scalar(1));
  const NodeOutput n = g.Placeholder("n", DType::kInt64);
  Node* loop = g.AddNode("While", {i0, acc0, n},
                         {{"cond_fn", std::string("w_cond")},
                          {"body_fn", std::string("w_body")},
                          {"num_carried", std::int64_t{2}}},
                         2);
  const auto out =
      Run(g, {{loop, 1}}, {{"n", Tensor::ScalarInt(10)}});
  EXPECT_FLOAT_EQ(out[0].ScalarValue(), 1024.0f);
}

// ---- Assertions and deferred state ----

TEST_F(ExecutorTest, AssertPassesThrough) {
  Graph g;
  const NodeOutput t = g.Constant(Tensor::ScalarBool(true));
  Node* a = g.AddNode("Assert", {t}, {{"assumption", std::string("ok")}});
  const auto out = Run(g, {{a, 0}});
  EXPECT_TRUE(out[0].ScalarBoolValue());
}

TEST_F(ExecutorTest, AssertFailureThrowsWithAssumptionId) {
  Graph g;
  const NodeOutput f = g.Constant(Tensor::ScalarBool(false));
  Node* a = g.AddNode("Assert", {f}, {{"assumption", std::string("shape:x")}});
  try {
    Run(g, {{a, 0}});
    FAIL() << "expected AssumptionFailed";
  } catch (const AssumptionFailed& e) {
    EXPECT_EQ(e.assumption_id(), "shape:x");
  }
}

TEST_F(ExecutorTest, FailedRunCommitsNothing) {
  // A variable assignment stages before the assert fails; the store must be
  // untouched afterwards (all-or-nothing, paper §3.2).
  variables_.Assign("w", Tensor::Scalar(1));
  host_.attrs[{7, "state"}] = Tensor::Scalar(5);
  Graph g;
  const NodeOutput v = g.Constant(Tensor::Scalar(99));
  Node* assign =
      g.AddNode("AssignVariable", {v}, {{"var", std::string("w")}});
  const NodeOutput obj = g.Constant(Tensor::ScalarInt(7));
  Node* setattr = g.AddNode("PySetAttr", {obj, v},
                            {{"attr", std::string("state")}});
  const NodeOutput f = g.Constant(Tensor::ScalarBool(false));
  Node* assert_node =
      g.AddNode("Assert", {f}, {{"assumption", std::string("a")}});
  assert_node->AddControlInput(assign);
  assert_node->AddControlInput(setattr);
  EXPECT_THROW(Run(g, {{assert_node, 0}}), AssumptionFailed);
  EXPECT_FLOAT_EQ(variables_.Read("w").ScalarValue(), 1.0f);
  EXPECT_FLOAT_EQ(host_.attrs.at({7, "state"}).ScalarValue(), 5.0f);
  EXPECT_TRUE(host_.writes.empty());
}

TEST_F(ExecutorTest, PyAttrLocalCopySemantics) {
  // Fig. 5: a write followed by a read inside one run sees the local copy;
  // the host heap is written exactly once, at commit.
  host_.attrs[{11, "state"}] = Tensor::Scalar(1);
  Graph g;
  const NodeOutput obj = g.Constant(Tensor::ScalarInt(11));
  const NodeOutput v = g.Constant(Tensor::Scalar(42));
  Node* set = g.AddNode("PySetAttr", {obj, v}, {{"attr", std::string("state")}});
  Node* get = g.AddNode("PyGetAttr", {obj}, {{"attr", std::string("state")}});
  get->AddControlInput(set);
  const auto out = Run(g, {{get, 0}});
  EXPECT_FLOAT_EQ(out[0].ScalarValue(), 42.0f);  // read saw local copy
  EXPECT_TRUE(host_.reads.empty());              // host read bypassed
  EXPECT_EQ(host_.writes.size(), 1u);            // single commit write
  EXPECT_FLOAT_EQ(host_.attrs.at({11, "state"}).ScalarValue(), 42.0f);
}

TEST_F(ExecutorTest, PySubscrStagedAndCommitted) {
  host_.subscrs[{3, 0}] = Tensor::Scalar(10);
  Graph g;
  const NodeOutput obj = g.Constant(Tensor::ScalarInt(3));
  const NodeOutput idx = g.Constant(Tensor::ScalarInt(0));
  Node* get = g.AddNode("PyGetSubscr", {obj, idx});
  Node* doubled = g.AddNode("Add", {{get, 0}, {get, 0}});
  Node* set = g.AddNode("PySetSubscr", {obj, idx, {doubled, 0}});
  const auto out = Run(g, {{set, 0}});
  EXPECT_FLOAT_EQ(out[0].ScalarValue(), 20.0f);
  EXPECT_FLOAT_EQ(host_.subscrs.at({3, 0}).ScalarValue(), 20.0f);
}

TEST_F(ExecutorTest, ApplySGDUpdatesVariableAtCommit) {
  variables_.Assign("w", Tensor::FromVector({1, 2}, Shape{2}));
  Graph g;
  const NodeOutput grad = g.Constant(Tensor::FromVector({10, 10}, Shape{2}));
  const NodeOutput lr = g.Constant(Tensor::Scalar(0.1f));
  Node* sgd = g.AddNode("ApplySGD", {grad, lr}, {{"var", std::string("w")}});
  Run(g, {{sgd, 0}});
  const auto w = variables_.Read("w").data<float>();
  EXPECT_FLOAT_EQ(w[0], 0.0f);
  EXPECT_FLOAT_EQ(w[1], 1.0f);
}

TEST_F(ExecutorTest, ReadVariableSeesStagedWrite) {
  variables_.Assign("v", Tensor::Scalar(1));
  Graph g;
  const NodeOutput c = g.Constant(Tensor::Scalar(5));
  Node* assign = g.AddNode("AssignVariable", {c}, {{"var", std::string("v")}});
  Node* read = g.AddNode("ReadVariable", {}, {{"var", std::string("v")}});
  read->AddControlInput(assign);
  Node* plus = g.AddNode("Add", {{read, 0}, c});
  const auto out = Run(g, {{plus, 0}});
  EXPECT_FLOAT_EQ(out[0].ScalarValue(), 10.0f);
}

TEST_F(ExecutorTest, OpsExecutedCounter) {
  Graph g;
  const NodeOutput a = g.Constant(Tensor::Scalar(1));
  Node* n1 = g.AddNode("Neg", {a});
  Node* n2 = g.AddNode("Neg", {{n1, 0}});
  std::int64_t ops = 0;
  Executor executor(&library_, &variables_, &host_, &rng_);
  executor.Run(g, {}, std::vector<NodeOutput>{{n2, 0}}, &ops);
  EXPECT_EQ(ops, 2);  // Const resolves without a kernel
}

TEST_F(ExecutorTest, NeedsDynamicExecutionDetection) {
  Graph dag;
  const NodeOutput c = dag.Constant(Tensor::Scalar(1));
  dag.AddNode("Neg", {c});
  EXPECT_FALSE(Executor::NeedsDynamicExecution(dag));

  CondGraph cond = BuildCond();
  EXPECT_TRUE(Executor::NeedsDynamicExecution(cond.g));
}

TEST_F(ExecutorTest, RandomOpsDeterministicPerSeed) {
  Graph g;
  Node* r1 = g.AddNode("RandomNormal", {},
                       {{"shape", std::vector<std::int64_t>{4}},
                        {"mean", 0.0},
                        {"stddev", 1.0}});
  Rng rng_a(9);
  Rng rng_b(9);
  Executor ex_a(&library_, &variables_, &host_, &rng_a);
  Executor ex_b(&library_, &variables_, &host_, &rng_b);
  const auto a = ex_a.Run(g, {}, std::vector<NodeOutput>{{r1, 0}});
  const auto b = ex_b.Run(g, {}, std::vector<NodeOutput>{{r1, 0}});
  EXPECT_TRUE(a[0].ElementsEqual(b[0]));
}

TEST_F(ExecutorTest, UnknownOpThrows) {
  Graph g;
  const NodeOutput c = g.Constant(Tensor::Scalar(1));
  Node* bad = g.AddNode("NoSuchOp", {c});
  EXPECT_THROW(Run(g, {{bad, 0}}), InvalidArgument);
}

}  // namespace
}  // namespace janus
