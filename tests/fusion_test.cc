// Tests for plan-time fusion of elementwise regions (runtime/fusion.h):
// region formation rules on DAG and dynamic plans (maximal chains and
// in-region diamonds fuse; fetched or externally-consumed interiors split;
// reductions are root-only; singletons never fuse), the bitwise
// fused-vs-unfused equivalence contract across broadcasts, reduction
// epilogues, and fallback dtype combinations, error attribution through the
// fallback path, the kill switches, program sharing through the process-wide
// FusedKernelCache, and an exhaustive fusion-on/off sweep over the model zoo.
#include "runtime/fusion.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <utility>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cache/fused_kernel_cache.h"
#include "common/rng.h"
#include "models/zoo.h"
#include "runtime/executor.h"
#include "runtime/plan.h"
#include "tensor/tensor.h"

namespace janus {
namespace {

const void* RawBytes(const Tensor& t) {
  switch (t.dtype()) {
    case DType::kFloat32: return t.data<float>().data();
    case DType::kInt64: return t.data<std::int64_t>().data();
    case DType::kBool: return t.data<bool>().data();
  }
  return nullptr;
}

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.dtype() == b.dtype() && a.shape() == b.shape() &&
         std::memcmp(RawBytes(a), RawBytes(b), a.byte_size()) == 0;
}

std::shared_ptr<const ExecutionPlan> BuildPlan(
    const Graph& g, const std::vector<NodeOutput>& fetches,
    bool enable_fusion) {
  return ExecutionPlan::Build(g, fetches, {.enable_fusion = enable_fusion});
}

class FusionTest : public ::testing::Test {
 protected:
  std::vector<Tensor> Run(const ExecutionPlan& plan,
                          const std::map<std::string, Tensor>& feeds,
                          RunMetrics* metrics = nullptr) {
    Executor executor(&library_, &variables_, nullptr, &rng_);
    return executor.Run(plan, feeds, metrics);
  }

  // Runs (graph, fetches) with fusion on and off and asserts every fetched
  // output is bitwise identical; returns the fused run's metrics.
  RunMetrics ExpectFusedMatchesUnfused(
      const Graph& g, const std::vector<NodeOutput>& fetches,
      const std::map<std::string, Tensor>& feeds = {}) {
    const auto fused_plan = BuildPlan(g, fetches, /*enable_fusion=*/true);
    const auto plain_plan = BuildPlan(g, fetches, /*enable_fusion=*/false);
    EXPECT_TRUE(plain_plan->fused_regions().empty());
    RunMetrics fused_metrics;
    RunMetrics plain_metrics;
    const std::vector<Tensor> fused = Run(*fused_plan, feeds, &fused_metrics);
    const std::vector<Tensor> plain = Run(*plain_plan, feeds, &plain_metrics);
    EXPECT_EQ(fused.size(), plain.size());
    for (std::size_t i = 0; i < fused.size(); ++i) {
      EXPECT_TRUE(BitwiseEqual(fused[i], plain[i]))
          << "fetch " << i << " is not bitwise identical";
    }
    // Fusion must never change how many member ops ran.
    EXPECT_EQ(fused_metrics.ops_executed, plain_metrics.ops_executed);
    EXPECT_EQ(plain_metrics.fused_regions, 0);
    EXPECT_EQ(plain_metrics.fused_ops, 0);
    return fused_metrics;
  }

  FunctionLibrary library_;
  VariableStore variables_;
  Rng rng_{7};
};

NodeOutput Reduce(Graph& g, const char* op, NodeOutput v,
                  std::vector<std::int64_t> axes, bool keep_dims) {
  return {g.AddNode(op, {v},
                    {{"axes", std::move(axes)}, {"keep_dims", keep_dims}}),
          0};
}

Tensor Iota(const Shape& shape, float start = 1.0f) {
  Tensor t = Tensor::Uninitialized(DType::kFloat32, shape);
  float v = start;
  for (float& x : t.mutable_data<float>()) x = (v += 0.5f);
  return t;
}

// ---- region formation ----

TEST_F(FusionTest, ChainFusesIntoOneRegion) {
  Graph g;
  const NodeOutput x = g.Placeholder("x", DType::kFloat32);
  const NodeOutput one = g.Constant(Tensor::Full(Shape{8, 8}, 1.0f));
  NodeOutput v = x;
  for (int i = 0; i < 6; ++i) v = {g.AddNode("Add", {v, one}), 0};
  const std::vector<NodeOutput> fetches{v};
  const auto plan = BuildPlan(g, fetches, true);
  ASSERT_EQ(plan->fused_regions().size(), 1u);
  EXPECT_EQ(plan->fused_regions()[0]->members.size(), 6u);
  EXPECT_FALSE(plan->fused_regions()[0]->has_reduction);
  // Placeholder + const + one region node: all interiors disappeared.
  EXPECT_EQ(plan->dag_nodes().size(), 3u);

  const RunMetrics metrics = ExpectFusedMatchesUnfused(
      g, fetches, {{"x", Iota(Shape{8, 8})}});
  EXPECT_EQ(metrics.fused_regions, 1);
  EXPECT_EQ(metrics.fused_ops, 6);
  EXPECT_EQ(metrics.ops_executed, 6);
}

TEST_F(FusionTest, SingleOpIsNeverFused) {
  Graph g;
  const NodeOutput x = g.Constant(Iota(Shape{4}));
  const NodeOutput y = {g.AddNode("Exp", {x}), 0};
  const auto plan = BuildPlan(g, {y}, true);
  EXPECT_TRUE(plan->fused_regions().empty());
}

TEST_F(FusionTest, FetchedInteriorSplitsTheRegion) {
  // a -> b -> c -> d with b also fetched: b is fetch-protected, so the
  // chain splits into {a,b} and {c,d}.
  Graph g;
  const NodeOutput x = g.Constant(Iota(Shape{16}));
  const NodeOutput a = {g.AddNode("Square", {x}), 0};
  const NodeOutput b = {g.AddNode("Neg", {a}), 0};
  const NodeOutput c = {g.AddNode("Abs", {b}), 0};
  const NodeOutput d = {g.AddNode("Sqrt", {c}), 0};
  const std::vector<NodeOutput> fetches{b, d};
  const auto plan = BuildPlan(g, fetches, true);
  ASSERT_EQ(plan->fused_regions().size(), 2u);
  EXPECT_EQ(plan->fused_regions()[0]->members.size(), 2u);
  EXPECT_EQ(plan->fused_regions()[1]->members.size(), 2u);
  ExpectFusedMatchesUnfused(g, fetches);
}

TEST_F(FusionTest, ExternallyConsumedInteriorStaysExternal) {
  // e = Exp(x) feeds both a fusable chain and a non-fusable Transpose, so e
  // must stay materialized (external) and only the chain fuses.
  Graph g;
  const NodeOutput x = g.Constant(Iota(Shape{4, 4}));
  const NodeOutput one = g.Constant(Tensor::Full(Shape{4, 4}, 1.0f));
  const NodeOutput e = {g.AddNode("Exp", {x}), 0};
  const NodeOutput f = {g.AddNode("Add", {e, one}), 0};
  const NodeOutput f2 = {g.AddNode("Mul", {f, one}), 0};
  const NodeOutput t = {g.AddNode("Transpose", {e}), 0};
  const std::vector<NodeOutput> fetches{f2, t};
  const auto plan = BuildPlan(g, fetches, true);
  ASSERT_EQ(plan->fused_regions().size(), 1u);
  EXPECT_EQ(plan->fused_regions()[0]->members.size(), 2u);
  ExpectFusedMatchesUnfused(g, fetches);
}

TEST_F(FusionTest, InRegionDiamondFusesWhole) {
  // x feeds two unary branches that rejoin: every interior's consumers are
  // inside the region, so all three ops fuse.
  Graph g;
  const NodeOutput x = g.Constant(Iota(Shape{32}));
  const NodeOutput a = {g.AddNode("Exp", {x}), 0};
  const NodeOutput b = {g.AddNode("Neg", {x}), 0};
  const NodeOutput c = {g.AddNode("Add", {a, b}), 0};
  const std::vector<NodeOutput> fetches{c};
  const auto plan = BuildPlan(g, fetches, true);
  ASSERT_EQ(plan->fused_regions().size(), 1u);
  EXPECT_EQ(plan->fused_regions()[0]->members.size(), 3u);
  const RunMetrics metrics = ExpectFusedMatchesUnfused(g, fetches);
  EXPECT_EQ(metrics.fused_ops, 3);
}

TEST_F(FusionTest, ReductionFusesOnlyAsRoot) {
  // ReduceSum feeding more elementwise work cannot be an interior: the sum
  // stays unfused and no region forms around it (both neighbours are
  // singletons).
  Graph g;
  const NodeOutput x = g.Constant(Iota(Shape{8}));
  const NodeOutput one = g.Constant(Tensor::Scalar(1.0f));
  const NodeOutput s = Reduce(g, "ReduceSum", x, {}, false);
  const NodeOutput a = {g.AddNode("Add", {s, one}), 0};
  const std::vector<NodeOutput> fetches{a};
  const auto plan = BuildPlan(g, fetches, true);
  EXPECT_TRUE(plan->fused_regions().empty());
  ExpectFusedMatchesUnfused(g, fetches);
}

// ---- execution equivalence ----

TEST_F(FusionTest, UniformBroadcastOperands) {
  Graph g;
  const NodeOutput x = g.Placeholder("x", DType::kFloat32);
  const NodeOutput two = g.Constant(Tensor::Scalar(2.0f));
  const NodeOutput three = g.Constant(Tensor::Scalar(3.0f));
  const NodeOutput m = {g.AddNode("Mul", {x, two}), 0};
  const NodeOutput a = {g.AddNode("Add", {m, three}), 0};
  const NodeOutput t = {g.AddNode("Tanh", {a}), 0};
  const std::vector<NodeOutput> fetches{t};
  const auto plan = BuildPlan(g, fetches, true);
  ASSERT_EQ(plan->fused_regions().size(), 1u);
  const RunMetrics metrics = ExpectFusedMatchesUnfused(
      g, fetches, {{"x", Iota(Shape{5, 7})}});
  EXPECT_EQ(metrics.fused_regions, 1);
  EXPECT_EQ(metrics.fused_ops, 3);
}

TEST_F(FusionTest, ReductionEpilogues) {
  for (const char* op : {"ReduceSum", "ReduceMean"}) {
    for (const bool keep_dims : {false, true}) {
      Graph g;
      const NodeOutput x = g.Placeholder("x", DType::kFloat32);
      const NodeOutput y = g.Constant(Iota(Shape{4, 6}, 2.0f));
      const NodeOutput m = {g.AddNode("Mul", {x, y}), 0};
      const NodeOutput r = Reduce(g, op, m, {1}, keep_dims);
      const std::vector<NodeOutput> fetches{r};
      const auto plan = BuildPlan(g, fetches, true);
      ASSERT_EQ(plan->fused_regions().size(), 1u) << op;
      EXPECT_TRUE(plan->fused_regions()[0]->has_reduction);
      const RunMetrics metrics = ExpectFusedMatchesUnfused(
          g, fetches, {{"x", Iota(Shape{4, 6})}});
      EXPECT_EQ(metrics.fused_regions, 1) << op;
      EXPECT_EQ(metrics.fused_ops, 2) << op;
    }
  }
}

TEST_F(FusionTest, ReduceAllAxesEpilogue) {
  Graph g;
  const NodeOutput x = g.Placeholder("x", DType::kFloat32);
  const NodeOutput sq = {g.AddNode("Square", {x}), 0};
  const NodeOutput r = Reduce(g, "ReduceMean", sq, {}, false);
  const std::vector<NodeOutput> fetches{r};
  const RunMetrics metrics = ExpectFusedMatchesUnfused(
      g, fetches, {{"x", Iota(Shape{3, 5, 2})}});
  EXPECT_EQ(metrics.fused_regions, 1);
}

TEST_F(FusionTest, Int64DivisionFallsBackBitExact) {
  // int64 true division promotes through float; the superop interpreter
  // refuses it at specialization time and the region runs per-member.
  Graph g;
  const NodeOutput x = g.Constant(Tensor::FromVectorInt({9, 8, 7, -6}, {4}));
  const NodeOutput y = g.Constant(Tensor::FromVectorInt({2, 4, 2, 4}, {4}));
  // int64 / int64 promotes to float32, so the epilogue adds a float scalar.
  const NodeOutput one = g.Constant(Tensor::Scalar(1.0f));
  const NodeOutput d = {g.AddNode("Div", {x, y}), 0};
  const NodeOutput a = {g.AddNode("Add", {d, one}), 0};
  const std::vector<NodeOutput> fetches{a};
  const auto plan = BuildPlan(g, fetches, true);
  ASSERT_EQ(plan->fused_regions().size(), 1u);
  const RunMetrics metrics = ExpectFusedMatchesUnfused(g, fetches);
  // Fallback dispatch: member ops still counted, no fused-region credit.
  EXPECT_EQ(metrics.fused_regions, 0);
  EXPECT_EQ(metrics.fused_ops, 0);
  EXPECT_EQ(metrics.ops_executed, 2);
}

TEST_F(FusionTest, PartialBroadcastFallsBackBitExact) {
  // {1,4} against {4,4} is neither scalar nor full-size: fallback path.
  Graph g;
  const NodeOutput x = g.Placeholder("x", DType::kFloat32);
  const NodeOutput row = g.Constant(Iota(Shape{1, 4}));
  const NodeOutput a = {g.AddNode("Add", {x, row}), 0};
  const NodeOutput t = {g.AddNode("Tanh", {a}), 0};
  const std::vector<NodeOutput> fetches{t};
  const auto plan = BuildPlan(g, fetches, true);
  ASSERT_EQ(plan->fused_regions().size(), 1u);
  const RunMetrics metrics = ExpectFusedMatchesUnfused(
      g, fetches, {{"x", Iota(Shape{4, 4})}});
  EXPECT_EQ(metrics.fused_regions, 0);
}

TEST_F(FusionTest, FallbackPreservesErrorAttribution) {
  // Integer FloorDiv may throw on a zero divisor; the region must fall back
  // to per-member dispatch so the error still names the failing node.
  Graph g;
  const NodeOutput x = g.Constant(Tensor::FromVectorInt({4, 5, 6}, {3}));
  const NodeOutput zero = g.Constant(Tensor::FromVectorInt({2, 0, 2}, {3}));
  const NodeOutput one = g.Constant(Tensor::ScalarInt(1));
  Node* fd = g.AddNode("FloorDiv", {x, zero});
  const NodeOutput a = {g.AddNode("Add", {{fd, 0}, one}), 0};
  const std::vector<NodeOutput> fetches{a};
  const auto plan = BuildPlan(g, fetches, true);
  ASSERT_EQ(plan->fused_regions().size(), 1u);
  try {
    Run(*plan, {});
    FAIL() << "division by zero did not throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("[at " + fd->name()),
              std::string::npos)
        << "error lost node attribution: " << e.what();
  }
}

TEST_F(FusionTest, ChangingShapesRespecializeViaCache) {
  // The same plan run under different feed shapes must revalidate its memo
  // and produce correct results for each shape (the despecialized
  // rank-only-graph scenario).
  Graph g;
  const NodeOutput x = g.Placeholder("x", DType::kFloat32);
  const NodeOutput s = {g.AddNode("Square", {x}), 0};
  const NodeOutput n = {g.AddNode("Neg", {s}), 0};
  const std::vector<NodeOutput> fetches{n};
  const auto plan = BuildPlan(g, fetches, true);
  ASSERT_EQ(plan->fused_regions().size(), 1u);
  for (const Shape& shape :
       {Shape{4}, Shape{2, 3}, Shape{4}, Shape{1, 1, 5}}) {
    const Tensor in = Iota(shape);
    const std::vector<Tensor> out = Run(*plan, {{"x", in}});
    ASSERT_EQ(out.size(), 1u);
    ASSERT_EQ(out[0].shape(), shape);
    const auto iv = in.data<float>();
    const auto ov = out[0].data<float>();
    for (std::size_t i = 0; i < ov.size(); ++i) {
      EXPECT_EQ(ov[i], -(iv[i] * iv[i]));
    }
  }
}

// ---- dynamic (tagged-token) plans ----

TEST_F(FusionTest, DynamicPlanFusesLoopBodyChain) {
  // i = 0; while (i < n) i = (i + 1) + 1 — the two-Add body chain fuses in
  // the tagged-token plan.
  auto build = [](Graph& g, Node** exit) {
    const NodeOutput zero = g.Constant(Tensor::ScalarInt(0));
    const NodeOutput n = g.Placeholder("n", DType::kInt64);
    Node* enter_i =
        g.AddNode("Enter", {zero}, {{"frame", std::string("loop")}});
    Node* enter_n = g.AddNode(
        "Enter", {n}, {{"frame", std::string("loop")}, {"is_constant", true}});
    Node* merge = g.AddNode("Merge", {{enter_i, 0}, {enter_i, 0}}, {}, 2);
    Node* less = g.AddNode("Less", {{merge, 0}, {enter_n, 0}});
    Node* sw = g.AddNode("Switch", {{merge, 0}, {less, 0}}, {}, 2);
    Node* one = g.AddNode("Const", {}, {{"value", Tensor::ScalarInt(1)}});
    Node* inc1 = g.AddNode("Add", {{sw, 1}, {one, 0}});
    Node* inc2 = g.AddNode("Add", {{inc1, 0}, {one, 0}});
    Node* next = g.AddNode("NextIteration", {{inc2, 0}});
    merge->set_input(1, {next, 0});
    *exit = g.AddNode("Exit", {{sw, 0}});
  };
  Graph g;
  Node* exit = nullptr;
  build(g, &exit);
  const std::vector<NodeOutput> fetches{{exit, 0}};
  const auto fused_plan = BuildPlan(g, fetches, true);
  ASSERT_EQ(fused_plan->strategy(), ExecutionPlan::Strategy::kDynamic);
  ASSERT_EQ(fused_plan->fused_regions().size(), 1u);
  EXPECT_EQ(fused_plan->fused_regions()[0]->members.size(), 2u);
  const auto plain_plan = BuildPlan(g, fetches, false);
  const std::map<std::string, Tensor> feeds{{"n", Tensor::ScalarInt(5)}};
  RunMetrics fused_metrics;
  const std::vector<Tensor> fused = Run(*fused_plan, feeds, &fused_metrics);
  const std::vector<Tensor> plain = Run(*plain_plan, feeds);
  ASSERT_EQ(fused.size(), 1u);
  EXPECT_EQ(fused[0].data<std::int64_t>()[0], 6);  // 0, 2, 4, exit at 6
  EXPECT_EQ(plain[0].data<std::int64_t>()[0], 6);
  EXPECT_EQ(fused_metrics.fused_regions, 3);  // once per iteration
  EXPECT_EQ(fused_metrics.fused_ops, 6);
}

// ---- kill switches and program sharing ----

TEST_F(FusionTest, GlobalKillSwitchDisablesThePass) {
  Graph g;
  const NodeOutput x = g.Constant(Iota(Shape{8}));
  const NodeOutput a = {g.AddNode("Square", {x}), 0};
  const NodeOutput b = {g.AddNode("Neg", {a}), 0};
  const std::vector<NodeOutput> fetches{b};
  ASSERT_TRUE(fusion::GloballyEnabled());
  fusion::SetGloballyEnabled(false);
  const auto off = BuildPlan(g, fetches, true);
  fusion::SetGloballyEnabled(true);
  EXPECT_TRUE(off->fused_regions().empty());
  const auto on = BuildPlan(g, fetches, true);
  EXPECT_EQ(on->fused_regions().size(), 1u);
}

TEST_F(FusionTest, PlanOptionDisablesThePass) {
  Graph g;
  const NodeOutput x = g.Constant(Iota(Shape{8}));
  const NodeOutput a = {g.AddNode("Square", {x}), 0};
  const NodeOutput b = {g.AddNode("Neg", {a}), 0};
  const auto plan = BuildPlan(g, {b}, false);
  EXPECT_TRUE(plan->fused_regions().empty());
}

TEST_F(FusionTest, IdenticalRegionsShareOneCachedProgram) {
  cache::FusedKernelCache::Global().Clear();
  const cache::FusedKernelCache::Stats before =
      cache::FusedKernelCache::Global().Snapshot();
  auto build = [] {
    auto g = std::make_unique<Graph>();
    const NodeOutput x = g->Placeholder("x", DType::kFloat32);
    const NodeOutput a = {g->AddNode("Sqrt", {x}), 0};
    const NodeOutput b = {g->AddNode("Sigmoid", {a}), 0};
    const NodeOutput c = {g->AddNode("Neg", {b}), 0};
    return std::pair{std::move(g), std::vector<NodeOutput>{c}};
  };
  auto [g1, f1] = build();
  auto [g2, f2] = build();
  const auto p1 = ExecutionPlan::Build(*g1, f1, {});
  const auto p2 = ExecutionPlan::Build(*g2, f2, {});
  ASSERT_EQ(p1->fused_regions().size(), 1u);
  ASSERT_EQ(p2->fused_regions().size(), 1u);
  const std::map<std::string, Tensor> feeds{{"x", Iota(Shape{16})}};
  const std::vector<Tensor> r1 = Run(*p1, feeds);
  const std::vector<Tensor> r2 = Run(*p2, feeds);
  EXPECT_TRUE(BitwiseEqual(r1[0], r2[0]));
  const cache::FusedKernelCache::Stats stats =
      cache::FusedKernelCache::Global().Snapshot();
  // Structurally identical regions with identical input signatures compile
  // once: the second plan's specialization is a cache hit.
  EXPECT_EQ(stats.inserts - before.inserts, 1);
  EXPECT_GE(stats.hits - before.hits, 1);
}

// ---- model-zoo sweep: fusion on vs off must be bitwise-equivalent ----

class FusionZooSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(FusionZooSweep, FusedLossesMatchUnfused) {
  const models::ModelSpec& spec = models::FindModel(GetParam());
  EngineOptions fused_options;
  ASSERT_TRUE(fused_options.enable_fusion);
  EngineOptions plain_options;
  plain_options.enable_fusion = false;
  models::ModelSession fused(spec, fused_options, 7);
  models::ModelSession plain(spec, plain_options, 7);
  for (int i = 0; i < 6; ++i) {
    const double a = fused.Step();
    const double b = plain.Step();
    ASSERT_TRUE(std::isfinite(a)) << "step " << i;
    // Fused execution is bitwise identical to per-node execution, so the
    // training trajectories must agree exactly, not just approximately.
    EXPECT_EQ(a, b) << spec.name << " diverged at step " << i;
  }
  EXPECT_EQ(plain.engine().stats().fused_regions, 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, FusionZooSweep,
    ::testing::Values("LeNet", "ResNet50", "Inception-v3", "LSTM", "LM",
                      "TreeRNN", "TreeLSTM", "A3C", "PPO", "AN", "pix2pix"));

TEST(FusionZooTest, ConvertedModelsActuallyFuse) {
  // A representative converted model must dispatch real fused regions and
  // surface them through the engine's stats. (The LSTM's gate arithmetic is
  // a dense web of elementwise chains; conv-dominated models like LeNet may
  // legitimately have no >=2-op elementwise region.)
  models::ModelSession session(models::FindModel("LSTM"), EngineOptions{});
  for (int i = 0; i < 10; ++i) session.Step();
  const EngineStats stats = session.engine().stats();
  EXPECT_GT(stats.graph_executions, 0);
  EXPECT_GT(stats.fused_regions, 0);
  EXPECT_GT(stats.fused_ops, stats.fused_regions);
}

}  // namespace
}  // namespace janus
