// Tests for the discrete-event simulator, the cluster scaling model, the
// ring allreduce, and the data-parallel trainer.
#include <gtest/gtest.h>

#include "dist/allreduce.h"
#include "dist/trainer.h"
#include "sim/cluster.h"
#include "sim/event_sim.h"

namespace janus {
namespace {

// ---- event simulator ----

TEST(EventSimTest, EventsFireInTimeOrder) {
  sim::Simulator simulator;
  std::vector<int> order;
  simulator.At(3.0, [&] { order.push_back(3); });
  simulator.At(1.0, [&] { order.push_back(1); });
  simulator.At(2.0, [&] { order.push_back(2); });
  EXPECT_DOUBLE_EQ(simulator.Run(), 3.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventSimTest, SimultaneousEventsAreFifo) {
  sim::Simulator simulator;
  std::vector<int> order;
  simulator.At(1.0, [&] { order.push_back(1); });
  simulator.At(1.0, [&] { order.push_back(2); });
  simulator.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventSimTest, EventsCanScheduleMoreEvents) {
  sim::Simulator simulator;
  double fired_at = -1;
  simulator.At(1.0, [&] {
    simulator.After(2.0, [&] { fired_at = simulator.now(); });
  });
  simulator.Run();
  EXPECT_DOUBLE_EQ(fired_at, 3.0);
}

TEST(EventSimTest, FifoResourceSerialises) {
  sim::Simulator simulator;
  sim::FifoResource resource(&simulator);
  const double f1 = resource.Submit(0.0, 2.0);
  const double f2 = resource.Submit(0.5, 1.0);  // waits for the first job
  EXPECT_DOUBLE_EQ(f1, 2.0);
  EXPECT_DOUBLE_EQ(f2, 3.0);
  EXPECT_DOUBLE_EQ(resource.total_busy(), 3.0);
}

// ---- ring allreduce timing model ----

TEST(ClusterModelTest, AllReduceZeroForSingleWorker) {
  sim::ClusterConfig cluster;
  cluster.num_workers = 1;
  EXPECT_DOUBLE_EQ(sim::RingAllReduceSeconds(cluster, 1 << 20), 0.0);
}

TEST(ClusterModelTest, AllReduceScalesWithBytes) {
  sim::ClusterConfig cluster;
  cluster.num_workers = 8;
  const double small = sim::RingAllReduceSeconds(cluster, 1 << 20);
  const double large = sim::RingAllReduceSeconds(cluster, 1 << 24);
  EXPECT_GT(large, small * 8);  // 16x data, latency-dominated floor aside
}

TEST(ClusterModelTest, CrossMachineUsesSlowerLink) {
  sim::ClusterConfig cluster;
  cluster.devices_per_machine = 6;
  cluster.num_workers = 6;
  const double intra = sim::RingAllReduceSeconds(cluster, 100 << 20);
  cluster.num_workers = 7;  // spills to a second machine
  const double inter = sim::RingAllReduceSeconds(cluster, 100 << 20);
  EXPECT_GT(inter, intra);
}

TEST(ClusterModelTest, OverlappedBeatsSerialWhenCommMatters) {
  sim::ClusterConfig cluster;
  cluster.num_workers = 12;
  std::vector<sim::LayerCost> layers(10);
  for (auto& layer : layers) {
    layer.forward_s = 1e-3;
    layer.backward_s = 2e-3;
    layer.gradient_bytes = 8 << 20;
  }
  const auto overlapped = sim::SimulateIteration(
      cluster, layers, sim::ExecutionStyle::kGraphOverlapped);
  const auto serial = sim::SimulateIteration(
      cluster, layers, sim::ExecutionStyle::kImperativeSerial);
  EXPECT_LT(overlapped.seconds, serial.seconds);
  // Communication volume is identical; only scheduling differs.
  EXPECT_GT(overlapped.comm_seconds, 0.0);
}

TEST(ClusterModelTest, ScaleFactorsMatchPaperShape) {
  // ResNet50-like: compute-heavy layers, ~100MB of gradients.
  sim::ClusterConfig cluster;
  std::vector<sim::LayerCost> layers(50);
  for (auto& layer : layers) {
    layer.forward_s = 2e-3;
    layer.backward_s = 4e-3;
    layer.gradient_bytes = 2 << 20;
  }
  const std::vector<int> counts{1, 3, 6, 12, 24, 36};
  const auto graph_points = sim::SimulateScaling(
      cluster, layers, sim::ExecutionStyle::kGraphOverlapped, counts, 64);
  const auto eager_points = sim::SimulateScaling(
      cluster, layers, sim::ExecutionStyle::kImperativeSerial, counts, 64);
  // §6.3.2: graph executors reach high scale factors; the imperative
  // executor scales poorly because it cannot overlap comm and compute.
  EXPECT_GT(graph_points.back().scale_factor, 0.6);
  EXPECT_LT(eager_points.back().scale_factor,
            graph_points.back().scale_factor);
  // Throughput still grows with workers for the graph executor.
  EXPECT_GT(graph_points.back().throughput, graph_points[0].throughput * 10);
}

TEST(ClusterModelTest, NetworkBoundModelSaturates) {
  // LM-like: 0.83B parameters (~3.3 GB of gradients) swamp the network —
  // the paper saw throughput saturate beyond 2 machines (scale factor
  // ~0.18 at 12 GPUs).
  sim::ClusterConfig cluster;
  std::vector<sim::LayerCost> layers(4);
  for (auto& layer : layers) {
    layer.forward_s = 10e-3;
    layer.backward_s = 20e-3;
    layer.gradient_bytes = 830000000ll;  // ~0.83B params / 4 layers x 4B
  }
  const std::vector<int> counts{1, 2, 3, 6, 12};
  const auto points = sim::SimulateScaling(
      cluster, layers, sim::ExecutionStyle::kGraphOverlapped, counts, 256);
  EXPECT_LT(points.back().scale_factor, 0.4);
}

// ---- real ring allreduce ----

class AllReduceSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(AllReduceSweep, ComputesExactMean) {
  const auto [k, n] = GetParam();
  std::vector<std::vector<float>> data(static_cast<std::size_t>(k));
  std::vector<float> expected(static_cast<std::size_t>(n), 0.0f);
  for (int r = 0; r < k; ++r) {
    auto& buffer = data[static_cast<std::size_t>(r)];
    buffer.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const float v = static_cast<float>((r + 1) * (i + 1));
      buffer[static_cast<std::size_t>(i)] = v;
      expected[static_cast<std::size_t>(i)] += v / static_cast<float>(k);
    }
  }
  std::vector<std::span<float>> spans;
  for (auto& buffer : data) spans.emplace_back(buffer);
  dist::RingAllReduceMean(spans);
  for (int r = 0; r < k; ++r) {
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(data[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)],
                  expected[static_cast<std::size_t>(i)], 1e-3f)
          << "rank " << r << " element " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, AllReduceSweep,
    ::testing::Values(std::pair{2, 8}, std::pair{3, 7}, std::pair{4, 16},
                      std::pair{5, 5}, std::pair{6, 100}, std::pair{3, 1},
                      std::pair{2, 2}, std::pair{7, 23}));

TEST(AllReduceTest, SingleParticipantIsIdentity) {
  std::vector<float> buffer{1, 2, 3};
  std::vector<std::span<float>> spans{std::span<float>(buffer)};
  dist::RingAllReduceMean(spans);
  EXPECT_FLOAT_EQ(buffer[0], 1.0f);
}

TEST(AllReduceTest, TensorWrapper) {
  Tensor a = Tensor::FromVector({1, 2}, Shape{2});
  Tensor b = Tensor::FromVector({3, 6}, Shape{2});
  dist::AllReduceMeanTensors({&a, &b});
  EXPECT_FLOAT_EQ(a.data<float>()[0], 2.0f);
  EXPECT_FLOAT_EQ(b.data<float>()[1], 4.0f);
  EXPECT_TRUE(a.ElementsEqual(b));
}

// ---- data-parallel trainer ----

constexpr const char* kDistSetup = R"(
w = variable('w', constant([[0.0]]))
def loss_fn():
    base = 1.0 * worker_rank + 1.0
    x = fill([4, 1], base)
    y = fill([4, 1], base * 3.0)
    pred = matmul(x, w)
    err = pred - y
    return reduce_mean(err * err)
)";

TEST(TrainerTest, ReplicasStaySynchronized) {
  dist::DataParallelTrainer trainer(3, EngineOptions{}, 99);
  trainer.RunOnAll(kDistSetup);
  for (int i = 0; i < 10; ++i) {
    trainer.Step("loss = optimize(loss_fn, 0.02)\n");
    EXPECT_TRUE(trainer.ReplicasInSync()) << "iteration " << i;
  }
}

TEST(TrainerTest, DistributedTrainingConverges) {
  dist::DataParallelTrainer trainer(2, EngineOptions{}, 99);
  trainer.RunOnAll(kDistSetup);
  double first = 0.0;
  double last = 0.0;
  for (int i = 0; i < 60; ++i) {
    last = trainer.Step("loss = optimize(loss_fn, 0.02)\n");
    if (i == 0) first = last;
  }
  EXPECT_LT(last, first * 0.2);
  // The optimum of the averaged objective is w = weighted mean solution;
  // both replicas converge to the same w.
  EXPECT_TRUE(trainer.ReplicasInSync());
}

TEST(TrainerTest, WorkersUseJanusGraphs) {
  dist::DataParallelTrainer trainer(2, EngineOptions{}, 7);
  trainer.RunOnAll(kDistSetup);
  for (int i = 0; i < 8; ++i) {
    trainer.Step("loss = optimize(loss_fn, 0.01)\n");
  }
  EXPECT_GT(trainer.engine(0).stats().graph_executions, 0);
  EXPECT_GT(trainer.engine(1).stats().graph_executions, 0);
}

TEST(TrainerTest, RankGlobalsExposed) {
  dist::DataParallelTrainer trainer(4, EngineOptions::ImperativePreset(), 1);
  trainer.RunOnAll("r = worker_rank\nn = num_workers\n");
  const auto r3 = trainer.interpreter(3).GetGlobal("r");
  EXPECT_EQ(std::get<std::int64_t>(r3), 3);
  const auto n = trainer.interpreter(0).GetGlobal("n");
  EXPECT_EQ(std::get<std::int64_t>(n), 4);
}

}  // namespace
}  // namespace janus
