// Tests for the MiniPy frontend: lexer, parser, interpreter semantics
// (dynamic control flow, dynamic types, impure functions — the paper's three
// dynamic-feature classes), builtins, and eager tape training.
#include "frontend/interpreter.h"

#include <gtest/gtest.h>

#include "frontend/builtins.h"
#include "frontend/lexer.h"
#include "frontend/parser.h"

namespace janus::minipy {
namespace {

class FrontendTest : public ::testing::Test {
 protected:
  FrontendTest() : interp_(&variables_, &rng_) { InstallBuiltins(interp_); }

  Value RunAndGet(const std::string& source, const std::string& global) {
    interp_.Run(source);
    return interp_.GetGlobal(global);
  }

  double Num(const Value& v) {
    if (const auto* i = std::get_if<std::int64_t>(&v)) {
      return static_cast<double>(*i);
    }
    if (const auto* d = std::get_if<double>(&v)) return *d;
    if (const auto* t = std::get_if<Tensor>(&v)) return t->ElementAsDouble(0);
    if (const auto* b = std::get_if<bool>(&v)) return *b ? 1 : 0;
    ADD_FAILURE() << "not numeric: " << ValueTypeName(v);
    return 0;
  }

  VariableStore variables_;
  Rng rng_{11};
  Interpreter interp_;
};

// ---- Lexer ----

TEST(LexerTest, TokenizesOperatorsAndLiterals) {
  const auto tokens = Tokenize("x = 3 + 4.5 ** 2\n");
  ASSERT_GE(tokens.size(), 8u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kName);
  EXPECT_EQ(tokens[1].kind, TokenKind::kAssign);
  EXPECT_EQ(tokens[2].kind, TokenKind::kInt);
  EXPECT_EQ(tokens[2].int_value, 3);
  EXPECT_EQ(tokens[4].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ(tokens[4].float_value, 4.5);
  EXPECT_EQ(tokens[5].kind, TokenKind::kDoubleStar);
}

TEST(LexerTest, IndentationProducesLayoutTokens) {
  const auto tokens = Tokenize("if x:\n    y = 1\nz = 2\n");
  int indents = 0;
  int dedents = 0;
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kIndent) ++indents;
    if (t.kind == TokenKind::kDedent) ++dedents;
  }
  EXPECT_EQ(indents, 1);
  EXPECT_EQ(dedents, 1);
}

TEST(LexerTest, NewlinesInsideBracketsIgnored) {
  const auto tokens = Tokenize("x = [1,\n     2,\n     3]\n");
  int newlines = 0;
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kNewline) ++newlines;
  }
  EXPECT_EQ(newlines, 1);
}

TEST(LexerTest, CommentsAndBlankLinesSkipped) {
  const auto tokens = Tokenize("# header\n\nx = 1  # trailing\n");
  EXPECT_EQ(tokens[0].kind, TokenKind::kName);
}

TEST(LexerTest, StringEscapes) {
  const auto tokens = Tokenize("s = 'a\\nb'\n");
  EXPECT_EQ(tokens[2].text, "a\nb");
}

TEST(LexerTest, UnterminatedStringThrows) {
  EXPECT_THROW(Tokenize("s = 'oops\n"), InvalidArgument);
}

TEST(LexerTest, InconsistentIndentThrows) {
  EXPECT_THROW(Tokenize("if x:\n    y = 1\n  z = 2\n"), InvalidArgument);
}

// ---- Parser ----

TEST(ParserTest, ParsesFunctionAndClass) {
  const Module m = Parse(R"(
def f(a, b):
    return a + b

class Model:
    def __init__(self):
        self.state = 0
)");
  ASSERT_EQ(m.body.size(), 2u);
  EXPECT_EQ(m.body[0]->kind, StmtKind::kDef);
  EXPECT_EQ(m.body[0]->params.size(), 2u);
  EXPECT_EQ(m.body[1]->kind, StmtKind::kClass);
  EXPECT_EQ(m.body[1]->methods.size(), 1u);
}

TEST(ParserTest, OperatorPrecedence) {
  const Module m = Parse("x = 1 + 2 * 3 ** 2\n");
  const Expr* root = m.body[0]->value.get();
  ASSERT_EQ(root->kind, ExprKind::kBinary);
  EXPECT_EQ(root->binary_op, BinaryOp::kAdd);  // * and ** bind tighter
}

TEST(ParserTest, UniqueNodeIds) {
  const Module m = Parse("x = 1 + 2\ny = x * 3\n");
  EXPECT_GT(m.num_nodes, 5);
}

TEST(ParserTest, UnsupportedKeywordsRejected) {
  EXPECT_THROW(Parse("import os\n"), InvalidArgument);
  EXPECT_THROW(Parse("def f():\n    yield 1\n"), InvalidArgument);
  EXPECT_THROW(Parse("with x:\n    pass\n"), InvalidArgument);
}

TEST(ParserTest, SyntaxErrorHasLineNumber) {
  try {
    Parse("x = 1\ny = (\n");
    FAIL();
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("line"), std::string::npos);
  }
}

// ---- Interpreter: core semantics ----

TEST_F(FrontendTest, ArithmeticAndPrecedence) {
  EXPECT_EQ(Num(RunAndGet("x = 2 + 3 * 4\n", "x")), 14);
  EXPECT_EQ(Num(RunAndGet("y = (2 + 3) * 4\n", "y")), 20);
  EXPECT_EQ(Num(RunAndGet("z = 2 ** 3 ** 2\n", "z")), 512);  // right assoc
  EXPECT_EQ(Num(RunAndGet("q = 7 // 2\n", "q")), 3);
  EXPECT_EQ(Num(RunAndGet("r = -7 // 2\n", "r")), -4);
  EXPECT_EQ(Num(RunAndGet("m = -7 % 3\n", "m")), 2);  // Python modulo
  EXPECT_DOUBLE_EQ(Num(RunAndGet("d = 7 / 2\n", "d")), 3.5);
}

TEST_F(FrontendTest, DynamicTyping) {
  // The same variable holds an int, then a string, then a list (DT).
  interp_.Run(R"(
x = 1
x = x + 1
t1 = x
x = 'hello '
x = x + 'world'
t2 = x
x = [1, 2] + [3]
t3 = len(x)
)");
  EXPECT_EQ(Num(interp_.GetGlobal("t1")), 2);
  EXPECT_EQ(std::get<std::string>(interp_.GetGlobal("t2")), "hello world");
  EXPECT_EQ(Num(interp_.GetGlobal("t3")), 3);
}

TEST_F(FrontendTest, ControlFlow) {
  interp_.Run(R"(
total = 0
for i in range(10):
    if i % 2 == 0:
        total += i
    else:
        total -= 1
while total > 10:
    total = total - 10
)");
  // evens 0..8 sum to 20, minus 5 odd decrements = 15; then 15-10 = 5.
  EXPECT_EQ(Num(interp_.GetGlobal("total")), 5);
}

TEST_F(FrontendTest, BreakAndContinue) {
  interp_.Run(R"(
acc = 0
for i in range(100):
    if i == 5:
        break
    if i % 2 == 1:
        continue
    acc += i
)");
  EXPECT_EQ(Num(interp_.GetGlobal("acc")), 6);  // 0 + 2 + 4
}

TEST_F(FrontendTest, FunctionsAndRecursion) {
  interp_.Run(R"(
def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)
result = fib(10)
)");
  EXPECT_EQ(Num(interp_.GetGlobal("result")), 55);
}

TEST_F(FrontendTest, ClosuresCaptureEnvironment) {
  interp_.Run(R"(
def make_adder(k):
    def add(x):
        return x + k
    return add
add5 = make_adder(5)
result = add5(37)
)");
  EXPECT_EQ(Num(interp_.GetGlobal("result")), 42);
}

TEST_F(FrontendTest, LambdaExpressions) {
  interp_.Run(R"(
f = lambda a, b: a * b + 1
result = f(6, 7)
)");
  EXPECT_EQ(Num(interp_.GetGlobal("result")), 43);
}

TEST_F(FrontendTest, GlobalStatement) {
  interp_.Run(R"(
counter = 0
def bump():
    global counter
    counter = counter + 1
bump()
bump()
bump()
)");
  EXPECT_EQ(Num(interp_.GetGlobal("counter")), 3);
}

TEST_F(FrontendTest, ClassesAndImpureMethods) {
  // The RNN state-passing pattern of Fig. 1: a method reads and mutates an
  // object attribute (IF).
  interp_.Run(R"(
class Accumulator:
    def __init__(self, start):
        self.state = start
    def add(self, x):
        self.state = self.state + x
        return self.state

acc = Accumulator(10)
a = acc.add(1)
b = acc.add(2)
final = acc.state
)");
  EXPECT_EQ(Num(interp_.GetGlobal("a")), 11);
  EXPECT_EQ(Num(interp_.GetGlobal("b")), 13);
  EXPECT_EQ(Num(interp_.GetGlobal("final")), 13);
}

TEST_F(FrontendTest, CallableObjectsViaDunderCall) {
  interp_.Run(R"(
class Doubler:
    def __call__(self, x):
        return x * 2
d = Doubler()
result = d(21)
)");
  EXPECT_EQ(Num(interp_.GetGlobal("result")), 42);
}

TEST_F(FrontendTest, ListsAndDicts) {
  interp_.Run(R"(
xs = [1, 2, 3]
xs.append(4)
xs[0] = 10
d = {'a': 1, 2: 'two'}
d['b'] = xs[3]
n = len(xs) + len(d)
has = 2 in d
first = xs[0]
neg = xs[-1]
)");
  EXPECT_EQ(Num(interp_.GetGlobal("n")), 7);
  EXPECT_TRUE(std::get<bool>(interp_.GetGlobal("has")));
  EXPECT_EQ(Num(interp_.GetGlobal("first")), 10);
  EXPECT_EQ(Num(interp_.GetGlobal("neg")), 4);
}

TEST_F(FrontendTest, TupleUnpacking) {
  interp_.Run("a, b = [1, 2]\nc = a + b\n");
  EXPECT_EQ(Num(interp_.GetGlobal("c")), 3);
}

TEST_F(FrontendTest, TryExceptFinallyAndRaise) {
  interp_.Run(R"(
log = []
def risky(x):
    try:
        if x > 0:
            raise 'positive!'
        log.append('ok')
    except Error as e:
        log.append('caught')
    finally:
        log.append('finally')

risky(1)
risky(-1)
n = len(log)
)");
  EXPECT_EQ(Num(interp_.GetGlobal("n")), 4);  // caught,finally,ok,finally
}

TEST_F(FrontendTest, UncaughtRaisePropagates) {
  EXPECT_THROW(interp_.Run("raise 'boom'\n"), MiniPyError);
}

TEST_F(FrontendTest, BooleanShortCircuit) {
  interp_.Run(R"(
def boom():
    raise 'should not run'
a = False and boom()
b = True or boom()
)");
  EXPECT_FALSE(std::get<bool>(interp_.GetGlobal("a")));
  EXPECT_TRUE(std::get<bool>(interp_.GetGlobal("b")));
}

TEST_F(FrontendTest, NameErrorsHaveMessages) {
  try {
    interp_.Run("x = undefined_name\n");
    FAIL();
  } catch (const MiniPyError& e) {
    EXPECT_NE(std::string(e.what()).find("undefined_name"),
              std::string::npos);
  }
}

// ---- Interpreter: tensors ----

TEST_F(FrontendTest, TensorArithmeticWithBroadcast) {
  interp_.Run(R"(
a = constant([[1.0, 2.0], [3.0, 4.0]])
b = constant([10.0, 20.0])
c = a * 2 + b
s = reduce_sum(c)
)");
  EXPECT_DOUBLE_EQ(Num(interp_.GetGlobal("s")), 2 + 4 + 6 + 8 + 4 * 15);
}

TEST_F(FrontendTest, TensorIterationAndSubscript) {
  interp_.Run(R"(
m = constant([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
total = 0.0
for row in m:
    total = total + reduce_sum(row)
first_row_sum = reduce_sum(m[0])
)");
  EXPECT_DOUBLE_EQ(Num(interp_.GetGlobal("total")), 21);
  EXPECT_DOUBLE_EQ(Num(interp_.GetGlobal("first_row_sum")), 3);
}

TEST_F(FrontendTest, TensorComparisonsAndSelect) {
  interp_.Run(R"(
x = constant([1.0, -2.0, 3.0])
mask = x > 0
y = select(mask, x, 0.0 * x)
s = reduce_sum(y)
)");
  EXPECT_DOUBLE_EQ(Num(interp_.GetGlobal("s")), 4);
}

TEST_F(FrontendTest, MatmulAndShapes) {
  interp_.Run(R"(
a = constant([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])
b = transpose(a)
c = matmul(a, b)
dims = c.shape
)");
  const auto dims =
      std::get<std::shared_ptr<ListValue>>(interp_.GetGlobal("dims"));
  EXPECT_EQ(Num(dims->items[0]), 2);
  EXPECT_EQ(Num(dims->items[1]), 2);
}

TEST_F(FrontendTest, VariablesPersistAcrossStatements) {
  interp_.Run(R"(
w = variable('w', constant([1.0, 2.0]))
assign(w, w * 3)
s = reduce_sum(w)
)");
  EXPECT_DOUBLE_EQ(Num(interp_.GetGlobal("s")), 9);
  EXPECT_TRUE(variables_.Contains("w"));
}

// ---- Imperative training via the tape ----

TEST_F(FrontendTest, OptimizeRunsSgdOnLinearRegression) {
  // Fit y = 2x with a scalar weight; loss must decrease.
  interp_.Run(R"(
w = variable('lin_w', constant([[0.5]]))
x = constant([[1.0], [2.0], [3.0]])
y = constant([[2.0], [4.0], [6.0]])

def loss_fn():
    pred = matmul(x, w)
    err = pred - y
    return reduce_mean(err * err)

first = optimize(loss_fn, 0.05)
for i in range(60):
    last = optimize(loss_fn, 0.05)
)");
  const double first = Num(interp_.GetGlobal("first"));
  const double last = Num(interp_.GetGlobal("last"));
  EXPECT_LT(last, first * 0.05);
  // Weight converged near 2.
  EXPECT_NEAR(variables_.Read("lin_w").data<float>()[0], 2.0f, 0.1f);
}

TEST_F(FrontendTest, GradientsBuiltinMatchesManualDerivative) {
  interp_.Run(R"(
w = variable('gw', constant([3.0]))
def f():
    return reduce_sum(w * w)
g = gradients(f)
)");
  const auto dict =
      std::get<std::shared_ptr<DictValue>>(interp_.GetGlobal("g"));
  const Tensor grad = std::get<Tensor>(dict->items.at(DictKey{"gw"}));
  EXPECT_FLOAT_EQ(grad.data<float>()[0], 6.0f);  // d(w^2)/dw = 2w
}

TEST_F(FrontendTest, GradientsFlowThroughPythonControlFlow) {
  // The tape records through interpreter-level loops and branches (DCF).
  interp_.Run(R"(
w = variable('cw', constant([2.0]))
def f():
    acc = w
    for i in range(3):
        if i % 2 == 0:
            acc = acc * w
        else:
            acc = acc + w
    return reduce_sum(acc)
g = gradients(f)
)");
  // acc = ((w*w)+w)*w = w^3+w^2; d/dw = 3w^2+2w = 16 at w=2.
  const auto dict =
      std::get<std::shared_ptr<DictValue>>(interp_.GetGlobal("g"));
  const Tensor grad = std::get<Tensor>(dict->items.at(DictKey{"cw"}));
  EXPECT_FLOAT_EQ(grad.data<float>()[0], 16.0f);
}

TEST_F(FrontendTest, Fig1RnnPatternTrainsImperatively) {
  // The paper's Figure 1 program shape: state passing through an object
  // attribute across optimize() calls.
  interp_.Run(R"(
class RNNModel:
    def __init__(self):
        self.state = zeros([1, 4])
        self.w = variable('rnn_w', randn([8, 4], 0.1))
    def __call__(self, sequence):
        state = self.state
        outputs = []
        for item in sequence:
            joined = concat([state, item], 1)
            state = tanh(matmul(joined, self.w))
            outputs = outputs + [state]
        self.state = stop_gradient(state)
        total = 0.0
        for out in outputs:
            total = total + reduce_mean(out * out)
        return total

model = RNNModel()
sequences = [constant([[1.0, 0.0, 0.0, 1.0]]), constant([[0.0, 1.0, 1.0, 0.0]])]
losses = []
for i in range(4):
    for seq in sequences:
        losses.append(optimize(lambda: model([seq]), 0.1))
n = len(losses)
)");
  EXPECT_EQ(Num(interp_.GetGlobal("n")), 8);
}

TEST_F(FrontendTest, StatementCounterAdvances) {
  const auto before = interp_.statements_executed();
  interp_.Run("x = 1\ny = 2\nz = x + y\n");
  EXPECT_GE(interp_.statements_executed() - before, 3);
}

// ---- Observer hooks ----

class RecordingObserver : public ExecutionObserver {
 public:
  void OnBranch(const Stmt*, bool taken) override {
    branches.push_back(taken);
  }
  void OnLoopFinished(const Stmt*, std::int64_t trips) override {
    loops.push_back(trips);
  }
  void OnFunctionEntry(const Stmt* def, std::span<const Value>) override {
    entries.push_back(def->name);
  }
  std::vector<bool> branches;
  std::vector<std::int64_t> loops;
  std::vector<std::string> entries;
};

TEST_F(FrontendTest, ObserverSeesBranchesLoopsAndCalls) {
  RecordingObserver observer;
  interp_.set_observer(&observer);
  interp_.Run(R"(
def f(n):
    total = 0
    for i in range(n):
        if i % 2 == 0:
            total += i
    return total
r = f(4)
)");
  interp_.set_observer(nullptr);
  ASSERT_EQ(observer.loops.size(), 1u);
  EXPECT_EQ(observer.loops[0], 4);
  EXPECT_EQ(observer.branches.size(), 4u);
  ASSERT_EQ(observer.entries.size(), 1u);
  EXPECT_EQ(observer.entries[0], "f");
}

}  // namespace
}  // namespace janus::minipy
