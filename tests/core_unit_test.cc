// Unit tests for the JANUS core building blocks below the engine level:
// the shape-assumption lattice (Fig. 4), value profiles, the profiler's
// feedback channel, context references, host-state tensor encoding, the
// compiled-graph entry-check machinery, and the DOT exporter.
#include <gtest/gtest.h>

#include "core/assumptions.h"
#include "core/compiled_graph.h"
#include "core/engine.h"
#include "core/host_state.h"
#include "core/profiler.h"
#include "frontend/builtins.h"
#include "graph/dot.h"

namespace janus {
namespace {

// ---- ShapeAssumption lattice ----

TEST(ShapeAssumptionTest, ExactMatchesOnlyThatShape) {
  const auto a = ShapeAssumption::Exact(Shape{4, 8});
  EXPECT_TRUE(a.Matches(Shape{4, 8}));
  EXPECT_FALSE(a.Matches(Shape{3, 8}));
  EXPECT_FALSE(a.Matches(Shape{4, 8, 1}));
  EXPECT_TRUE(a.IsExact());
  EXPECT_EQ(a.ExactShape(), (Shape{4, 8}));
}

TEST(ShapeAssumptionTest, RelaxationWildcardsMismatchedDims) {
  // The Fig. 4 walk: (4,8) observed (3,8) -> (?,8).
  const auto relaxed =
      ShapeAssumption::Exact(Shape{4, 8}).Relaxed(Shape{3, 8});
  EXPECT_TRUE(relaxed.Matches(Shape{3, 8}));
  EXPECT_TRUE(relaxed.Matches(Shape{2, 8}));
  EXPECT_TRUE(relaxed.Matches(Shape{6, 8}));
  EXPECT_FALSE(relaxed.Matches(Shape{4, 7}));
  EXPECT_FALSE(relaxed.IsExact());
  EXPECT_EQ(relaxed.ToString(), "(?, 8)");
}

TEST(ShapeAssumptionTest, RankMismatchCollapsesToUnknown) {
  const auto relaxed =
      ShapeAssumption::Exact(Shape{4, 8}).Relaxed(Shape{4, 8, 1});
  EXPECT_TRUE(relaxed.is_unknown());
  EXPECT_TRUE(relaxed.Matches(Shape{}));
  EXPECT_TRUE(relaxed.Matches(Shape{1, 2, 3, 4}));
}

TEST(ShapeAssumptionTest, RelaxationIsMonotone) {
  // Once a dimension is wildcarded it never re-pins.
  auto a = ShapeAssumption::Exact(Shape{4, 8});
  a = a.Relaxed(Shape{3, 8});
  a = a.Relaxed(Shape{4, 8});  // the original shape reappears
  EXPECT_FALSE(a.IsExact());
  EXPECT_TRUE(a.Matches(Shape{9, 8}));
}

TEST(ShapeAssumptionTest, ScalarShapes) {
  const auto scalar = ShapeAssumption::Exact(Shape{});
  EXPECT_TRUE(scalar.Matches(Shape{}));
  EXPECT_FALSE(scalar.Matches(Shape{1}));
  EXPECT_TRUE(scalar.IsExact());
}

// ---- ValueProfile ----

TEST(ValueProfileTest, StableScalarStaysStable) {
  ValueProfile profile;
  for (int i = 0; i < 5; ++i) {
    profile.Observe(ObservedKind::kInt, DType::kInt64, nullptr, 7.0, "", 0);
  }
  EXPECT_EQ(profile.kind, ObservedKind::kInt);
  EXPECT_TRUE(profile.value_stable);
  EXPECT_EQ(profile.observations, 5);
}

TEST(ValueProfileTest, ChangingValueBreaksStability) {
  ValueProfile profile;
  profile.Observe(ObservedKind::kInt, DType::kInt64, nullptr, 7.0, "", 0);
  profile.Observe(ObservedKind::kInt, DType::kInt64, nullptr, 8.0, "", 0);
  EXPECT_FALSE(profile.value_stable);
  EXPECT_EQ(profile.kind, ObservedKind::kInt);
}

TEST(ValueProfileTest, KindChangeBecomesMixed) {
  ValueProfile profile;
  profile.Observe(ObservedKind::kInt, DType::kInt64, nullptr, 1.0, "", 0);
  profile.Observe(ObservedKind::kString, DType::kInt64, nullptr, 0.0, "x", 0);
  EXPECT_EQ(profile.kind, ObservedKind::kMixed);
}

TEST(ValueProfileTest, TensorShapesRelaxAcrossObservations) {
  ValueProfile profile;
  const Shape s1{4, 8};
  const Shape s2{3, 8};
  profile.Observe(ObservedKind::kTensor, DType::kFloat32, &s1, 0, "", 0);
  EXPECT_TRUE(profile.shape.IsExact());
  profile.Observe(ObservedKind::kTensor, DType::kFloat32, &s2, 0, "", 0);
  EXPECT_FALSE(profile.shape.IsExact());
  EXPECT_TRUE(profile.shape.Matches(Shape{9, 8}));
}

TEST(ValueProfileTest, HeapIdentityTracking) {
  ValueProfile profile;
  profile.Observe(ObservedKind::kObject, DType::kInt64, nullptr, 0, "", 11);
  EXPECT_TRUE(profile.heap_stable);
  profile.Observe(ObservedKind::kObject, DType::kInt64, nullptr, 0, "", 12);
  EXPECT_FALSE(profile.heap_stable);
}

TEST(BranchProfileTest, StabilityAndDirection) {
  BranchProfile branch;
  branch.taken = 5;
  EXPECT_TRUE(branch.Stable());
  EXPECT_TRUE(branch.Direction());
  branch.not_taken = 1;
  EXPECT_FALSE(branch.Stable());
}

TEST(LoopProfileTest, TripCountStability) {
  LoopProfile loop;
  loop.Observe(10);
  loop.Observe(10);
  EXPECT_TRUE(loop.stable);
  EXPECT_EQ(loop.trip_count, 10);
  loop.Observe(11);
  EXPECT_FALSE(loop.stable);
}

// ---- Profiler feedback channel ----

TEST(ProfilerTest, FailedAssumptionsAreRemembered) {
  Profiler profiler;
  EXPECT_FALSE(profiler.HasFailed("branch:stmt7"));
  profiler.MarkAssumptionFailed("branch:stmt7");
  EXPECT_TRUE(profiler.HasFailed("branch:stmt7"));
  EXPECT_FALSE(profiler.HasFailed("branch:stmt8"));
}

TEST(ProfilerTest, ContextProfilesAccumulate) {
  Profiler profiler;
  profiler.ObserveContext("x", minipy::Value{std::int64_t{3}});
  profiler.ObserveContext("x", minipy::Value{std::int64_t{3}});
  const ValueProfile* profile = profiler.context("x");
  ASSERT_NE(profile, nullptr);
  EXPECT_TRUE(profile->value_stable);
  profiler.ObserveContext("x", minipy::Value{std::int64_t{4}});
  EXPECT_FALSE(profiler.context("x")->value_stable);
  EXPECT_EQ(profiler.context("unknown"), nullptr);
}

// ---- ContextRef resolution and entry checks ----

class ContextRefTest : public ::testing::Test {
 protected:
  ContextRefTest() : interp_(&variables_, &rng_) {
    minipy::InstallBuiltins(interp_);
  }
  VariableStore variables_;
  Rng rng_{1};
  minipy::Interpreter interp_;
};

TEST_F(ContextRefTest, ResolvesArguments) {
  ContextRef ref;
  ref.arg_index = 1;
  const std::vector<minipy::Value> args{std::int64_t{1}, std::int64_t{2}};
  EXPECT_EQ(std::get<std::int64_t>(ref.Resolve(args)), 2);
  ref.arg_index = 5;
  EXPECT_THROW(ref.Resolve(args), InvalidArgument);
}

TEST_F(ContextRefTest, ResolvesAttrAndIndexSteps) {
  interp_.Run(R"(
class Box:
    def __init__(self):
        self.items = [10, 20, 30]
b = Box()
)");
  // Build a ref equivalent to b.items[2] anchored in the global env.
  interp_.SetGlobal("probe_target", interp_.GetGlobal("b"));
  ContextRef ref;
  ref.arg_index = 0;
  ref.steps.push_back(ContextRef::Step{true, "items", 0});
  ref.steps.push_back(ContextRef::Step{false, "", 2});
  const std::vector<minipy::Value> args{interp_.GetGlobal("b")};
  EXPECT_EQ(std::get<std::int64_t>(ref.Resolve(args)), 30);
  EXPECT_EQ(ref.ToString(), "arg0.items[2]");
}

TEST_F(ContextRefTest, MissingStepsThrow) {
  interp_.Run("class E:\n    pass\ne = E()\n");
  ContextRef ref;
  ref.arg_index = 0;
  ref.steps.push_back(ContextRef::Step{true, "nope", 0});
  const std::vector<minipy::Value> args{interp_.GetGlobal("e")};
  EXPECT_THROW(ref.Resolve(args), InvalidArgument);
}

TEST_F(ContextRefTest, EntryValueMatching) {
  EXPECT_TRUE(EntryValueMatches(minipy::Value{std::int64_t{3}},
                                minipy::Value{std::int64_t{3}}));
  EXPECT_FALSE(EntryValueMatches(minipy::Value{std::int64_t{3}},
                                 minipy::Value{std::int64_t{4}}));
  EXPECT_TRUE(EntryValueMatches(minipy::Value{std::string("a")},
                                minipy::Value{std::string("a")}));
  // Heap values compare by identity.
  interp_.Run("xs = [1]\nys = [1]\n");
  EXPECT_TRUE(EntryValueMatches(interp_.GetGlobal("xs"),
                                interp_.GetGlobal("xs")));
  EXPECT_FALSE(EntryValueMatches(interp_.GetGlobal("xs"),
                                 interp_.GetGlobal("ys")));
  // Tensors must never be entry expectations.
  EXPECT_THROW(EntryValueMatches(minipy::Value{Tensor::Scalar(1)},
                                 minipy::Value{Tensor::Scalar(1)}),
               InternalError);
}

// ---- Host-state adapter ----

class HostStateTest : public ::testing::Test {
 protected:
  HostStateTest() : interp_(&variables_, &rng_), host_(&interp_) {
    minipy::InstallBuiltins(interp_);
  }
  VariableStore variables_;
  Rng rng_{1};
  minipy::Interpreter interp_;
  InterpreterHostState host_;
};

TEST_F(HostStateTest, EncodesValueKinds) {
  EXPECT_EQ(EncodeValueAsTensor(minipy::Value{std::int64_t{5}})
                .ScalarIntValue(),
            5);
  EXPECT_FLOAT_EQ(
      EncodeValueAsTensor(minipy::Value{2.5}).ScalarValue(), 2.5f);
  EXPECT_TRUE(EncodeValueAsTensor(minipy::Value{true}).ScalarBoolValue());
  // None encodes as the null pointer.
  EXPECT_EQ(EncodeValueAsTensor(minipy::Value{minipy::NoneType{}})
                .ScalarIntValue(),
            0);
  // Heap values encode as their heap ids.
  auto list = interp_.MakeList({minipy::Value{std::int64_t{1}}});
  EXPECT_EQ(EncodeValueAsTensor(minipy::Value{list}).ScalarIntValue(),
            list->heap_id());
  // Functions have no encoding.
  interp_.Run("def f():\n    pass\n");
  EXPECT_THROW(EncodeValueAsTensor(interp_.GetGlobal("f")), NotConvertible);
}

TEST_F(HostStateTest, AttrRoundTripThroughPointers) {
  interp_.Run(R"(
class Cell:
    def __init__(self):
        self.state = constant([1.0, 2.0])
c = Cell()
)");
  const auto obj = std::get<std::shared_ptr<minipy::ObjectValue>>(
      interp_.GetGlobal("c"));
  const Tensor read = host_.GetAttr(obj->heap_id(), "state");
  EXPECT_EQ(read.shape(), (Shape{2}));
  host_.SetAttr(obj->heap_id(), "state", Tensor::Scalar(9));
  EXPECT_FLOAT_EQ(std::get<Tensor>(obj->attrs.at("state")).ScalarValue(),
                  9.0f);
  EXPECT_THROW(host_.GetAttr(obj->heap_id(), "missing"), InvalidArgument);
}

TEST_F(HostStateTest, SubscrNegativeIndexAndBounds) {
  auto list = interp_.MakeList(
      {minipy::Value{Tensor::Scalar(1)}, minipy::Value{Tensor::Scalar(2)}});
  EXPECT_FLOAT_EQ(host_.GetSubscr(list->heap_id(), -1).ScalarValue(), 2.0f);
  EXPECT_THROW(host_.GetSubscr(list->heap_id(), 7), InvalidArgument);
  host_.SetSubscr(list->heap_id(), 0, Tensor::Scalar(42));
  EXPECT_FLOAT_EQ(std::get<Tensor>(list->items[0]).ScalarValue(), 42.0f);
}

// ---- DOT exporter ----

TEST(DotTest, RendersNodesEdgesAndControlDeps) {
  Graph g;
  const NodeOutput x = g.Placeholder("x", DType::kFloat32);
  Node* sq = g.AddNode("Square", {x}, {}, 1, "square");
  Node* anchor = g.AddNode("NoOp", {}, {}, 1, "anchor");
  anchor->AddControlInput(sq);
  const std::string dot = ToDot(g, "demo");
  EXPECT_NE(dot.find("digraph \"demo\""), std::string::npos);
  EXPECT_NE(dot.find("square"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // control edge
}

TEST(DotTest, FunctionsMarkParamsAndResults) {
  GraphFunction fn;
  fn.name = "f";
  Node* p = fn.graph.AddNode("Param", {}, {{"index", std::int64_t{0}}});
  Node* sq = fn.graph.AddNode("Square", {{p, 0}});
  fn.parameters = {p};
  fn.results = {{sq, 0}};
  const std::string dot = ToDot(fn);
  EXPECT_NE(dot.find("palegreen"), std::string::npos);  // param styling
  EXPECT_NE(dot.find("result 0"), std::string::npos);
}

TEST(DotTest, CompiledGraphRendersEndToEnd) {
  // Export the graph JANUS generated for a real training step.
  VariableStore variables;
  Rng rng(2);
  minipy::Interpreter interp(&variables, &rng);
  minipy::InstallBuiltins(interp);
  JanusEngine engine(&interp, EngineOptions{});
  engine.Attach();
  interp.Run(R"(
w = variable('w', constant([1.0]))
def fn():
    return reduce_sum(w * w)
for i in range(6):
    optimize(fn, 0.01)
)");
  EXPECT_GT(engine.stats().graph_executions, 0);
}

}  // namespace
}  // namespace janus
