// Tests for the graph optimisation passes: constant folding, CSE,
// arithmetic simplification, DCE, and the fixpoint driver — including the
// invariant that optimisation never changes computed results.
#include "opt/passes.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "runtime/executor.h"
#include "tensor/ops.h"

namespace janus {
namespace {

class OptTest : public ::testing::Test {
 protected:
  std::vector<Tensor> Run(const Graph& g, std::vector<NodeOutput> fetches,
                          const std::map<std::string, Tensor>& feeds = {}) {
    Executor executor(&library_, &variables_, nullptr, &rng_);
    return executor.Run(g, feeds, fetches);
  }
  FunctionLibrary library_;
  VariableStore variables_;
  Rng rng_{3};
};

TEST_F(OptTest, ConstantFoldingCollapsesConstantExpressions) {
  Graph g;
  const NodeOutput a = g.Constant(Tensor::Scalar(2));
  const NodeOutput b = g.Constant(Tensor::Scalar(3));
  Node* add = g.AddNode("Add", {a, b});
  Node* mul = g.AddNode("Mul", {{add, 0}, b});
  const int folded = ConstantFolding(g);
  EXPECT_EQ(folded, 2);  // both Add and Mul fold (Mul sees folded Add)
  const auto out = Run(g, {{mul, 0}});
  EXPECT_FLOAT_EQ(out[0].ScalarValue(), 15.0f);
}

TEST_F(OptTest, ConstantFoldingSkipsNonConstInputs) {
  Graph g;
  const NodeOutput x = g.Placeholder("x", DType::kFloat32);
  const NodeOutput c = g.Constant(Tensor::Scalar(3));
  g.AddNode("Add", {x, c});
  EXPECT_EQ(ConstantFolding(g), 0);
}

TEST_F(OptTest, ConstantFoldingSkipsImpureOps) {
  Graph g;
  Node* rand = g.AddNode("RandomNormal", {},
                         {{"shape", std::vector<std::int64_t>{2}},
                          {"mean", 0.0},
                          {"stddev", 1.0}});
  (void)rand;
  EXPECT_EQ(ConstantFolding(g), 0);
}

TEST_F(OptTest, CseMergesIdenticalSubexpressions) {
  Graph g;
  const NodeOutput x = g.Placeholder("x", DType::kFloat32);
  Node* s1 = g.AddNode("Square", {x});
  Node* s2 = g.AddNode("Square", {x});
  Node* sum = g.AddNode("Add", {{s1, 0}, {s2, 0}});
  EXPECT_EQ(CommonSubexpressionElimination(g), 1);
  // Both inputs of the Add now point at the same node.
  EXPECT_EQ(sum->input(0).node, sum->input(1).node);
  const auto out = Run(g, {{sum, 0}}, {{"x", Tensor::Scalar(3)}});
  EXPECT_FLOAT_EQ(out[0].ScalarValue(), 18.0f);
}

TEST_F(OptTest, CseDistinguishesDifferentAttrs) {
  Graph g;
  const NodeOutput x = g.Placeholder("x", DType::kFloat32);
  g.AddNode("ReduceSum", {x},
            {{"axes", std::vector<std::int64_t>{0}}, {"keep_dims", false}});
  g.AddNode("ReduceSum", {x},
            {{"axes", std::vector<std::int64_t>{1}}, {"keep_dims", false}});
  EXPECT_EQ(CommonSubexpressionElimination(g), 0);
}

TEST_F(OptTest, CseDistinguishesControlDependencies) {
  Graph g;
  const NodeOutput x = g.Placeholder("x", DType::kFloat32);
  Node* anchor = g.AddNode("NoOp", {});
  Node* s1 = g.AddNode("Square", {x});
  Node* s2 = g.AddNode("Square", {x});
  s2->AddControlInput(anchor);
  EXPECT_EQ(CommonSubexpressionElimination(g), 0);
  (void)s1;
}

TEST_F(OptTest, CseDeduplicatesEqualConstants) {
  Graph g;
  g.Constant(Tensor::Scalar(1));
  g.Constant(Tensor::Scalar(1));
  g.Constant(Tensor::Scalar(2));
  EXPECT_EQ(CommonSubexpressionElimination(g), 1);
}

TEST_F(OptTest, ArithmeticIdentities) {
  Graph g;
  const NodeOutput x = g.Placeholder("x", DType::kFloat32);
  const NodeOutput zero = g.Constant(Tensor::Scalar(0));
  const NodeOutput one = g.Constant(Tensor::Scalar(1));
  Node* a = g.AddNode("Add", {x, zero});
  Node* m = g.AddNode("Mul", {{a, 0}, one});
  Node* s = g.AddNode("Sub", {{m, 0}, zero});
  Node* d = g.AddNode("Div", {{s, 0}, one});
  Node* out = g.AddNode("Neg", {{d, 0}});
  const int rewrites = ArithmeticSimplification(g);
  EXPECT_EQ(rewrites, 4);
  // After rewiring, Neg's input is x itself.
  EXPECT_EQ(out->input(0).node, x.node);
  const auto r = Run(g, {{out, 0}}, {{"x", Tensor::Scalar(5)}});
  EXPECT_FLOAT_EQ(r[0].ScalarValue(), -5.0f);
}

TEST_F(OptTest, MulByZeroBecomesZerosLike) {
  Graph g;
  const NodeOutput x = g.Placeholder("x", DType::kFloat32);
  const NodeOutput zero = g.Constant(Tensor::Scalar(0));
  Node* m = g.AddNode("Mul", {x, zero});
  Node* consumer = g.AddNode("Identity", {{m, 0}});
  ArithmeticSimplification(g);
  EXPECT_EQ(consumer->input(0).node->op(), "ZerosLike");
  const auto out = Run(g, {{consumer->input(0).node, 0}},
                       {{"x", Tensor::FromVector({1, 2}, Shape{2})}});
  EXPECT_EQ(out[0].shape(), (Shape{2}));
  EXPECT_FLOAT_EQ(out[0].data<float>()[0], 0.0f);
}

TEST_F(OptTest, DoubleNegationEliminated) {
  Graph g;
  const NodeOutput x = g.Placeholder("x", DType::kFloat32);
  Node* n1 = g.AddNode("Neg", {x});
  Node* n2 = g.AddNode("Neg", {{n1, 0}});
  Node* consumer = g.AddNode("Square", {{n2, 0}});
  ArithmeticSimplification(g);
  EXPECT_EQ(consumer->input(0).node, x.node);
}

TEST_F(OptTest, DceRemovesUnreachable) {
  Graph g;
  const NodeOutput x = g.Placeholder("x", DType::kFloat32);
  Node* used = g.AddNode("Square", {x});
  g.AddNode("Neg", {x});  // dead
  g.AddNode("Exp", {x});  // dead
  const std::vector<NodeOutput> fetches{{used, 0}};
  EXPECT_EQ(DeadCodeElimination(g, fetches), 2);
  EXPECT_EQ(g.num_nodes(), 2u);
}

TEST_F(OptTest, DceKeepsControlAnchoredSideEffects) {
  variables_.Assign("w", Tensor::Scalar(0));
  Graph g;
  const NodeOutput v = g.Constant(Tensor::Scalar(9));
  Node* assign = g.AddNode("AssignVariable", {v}, {{"var", std::string("w")}});
  Node* anchor = g.AddNode("NoOp", {});
  anchor->AddControlInput(assign);
  const std::vector<NodeOutput> fetches{{anchor, 0}};
  EXPECT_EQ(DeadCodeElimination(g, fetches), 0);
  Run(g, fetches);
  EXPECT_FLOAT_EQ(variables_.Read("w").ScalarValue(), 9.0f);
}

TEST_F(OptTest, OptimizeGraphFixpointPreservesSemantics) {
  // Build a messy graph mixing foldable constants, duplicates, and
  // identities; optimisation must preserve the computed value.
  Graph g;
  const NodeOutput x = g.Placeholder("x", DType::kFloat32);
  const NodeOutput two_a = g.Constant(Tensor::Scalar(2));
  const NodeOutput two_b = g.Constant(Tensor::Scalar(2));
  const NodeOutput zero = g.Constant(Tensor::Scalar(0));
  Node* four = g.AddNode("Mul", {two_a, two_b});      // foldable
  Node* x1 = g.AddNode("Add", {x, zero});             // simplifiable
  Node* p1 = g.AddNode("Mul", {{x1, 0}, {four, 0}});
  Node* p2 = g.AddNode("Mul", {{x1, 0}, {four, 0}});  // duplicate
  Node* sum = g.AddNode("Add", {{p1, 0}, {p2, 0}});
  g.AddNode("Exp", {x});  // dead

  std::vector<NodeOutput> fetches{{sum, 0}};
  const auto before = Run(g, fetches, {{"x", Tensor::Scalar(3)}});
  const std::size_t nodes_before = g.num_nodes();
  const OptimizationStats stats = OptimizeGraph(g, fetches);
  EXPECT_GT(stats.folded, 0);
  EXPECT_GT(stats.cse_merged, 0);
  EXPECT_GT(stats.simplified, 0);
  EXPECT_GT(stats.dce_removed, 0);
  EXPECT_LT(g.num_nodes(), nodes_before);
  const auto after = Run(g, fetches, {{"x", Tensor::Scalar(3)}});
  EXPECT_FLOAT_EQ(before[0].ScalarValue(), after[0].ScalarValue());
  EXPECT_FLOAT_EQ(after[0].ScalarValue(), 24.0f);
}

TEST_F(OptTest, OptimizeGraphIsIdempotent) {
  Graph g;
  const NodeOutput x = g.Placeholder("x", DType::kFloat32);
  Node* s = g.AddNode("Square", {x});
  std::vector<NodeOutput> fetches{{s, 0}};
  OptimizeGraph(g, fetches);
  const std::size_t n = g.num_nodes();
  const OptimizationStats again = OptimizeGraph(g, fetches);
  EXPECT_EQ(g.num_nodes(), n);
  EXPECT_EQ(again.folded + again.cse_merged + again.simplified +
                again.dce_removed,
            0);
}

TEST_F(OptTest, PurityClassification) {
  EXPECT_TRUE(IsPureOp("Add"));
  EXPECT_TRUE(IsPureOp("MatMul"));
  EXPECT_TRUE(IsPureOp("Conv2D"));
  EXPECT_FALSE(IsPureOp("RandomNormal"));
  EXPECT_FALSE(IsPureOp("ReadVariable"));
  EXPECT_FALSE(IsPureOp("Assert"));
  EXPECT_FALSE(IsPureOp("PySetAttr"));
  EXPECT_FALSE(IsPureOp("Switch"));
  EXPECT_FALSE(IsPureOp("Invoke"));
}

}  // namespace
}  // namespace janus
