// Tests for the live-introspection layer (src/obs): the speculation
// flight recorder (ring overflow, JSONL schema, threaded publication),
// the Prometheus text exposition (name sanitation, label escaping,
// counter + histogram rendering), the introspection hub's source
// retirement, the HTTP endpoint routing, an end-to-end socket scrape of a
// live engine, and fallback root-cause attribution naming the exact
// failing assumption.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "frontend/builtins.h"
#include "obs/http_export.h"
#include "obs/json_check.h"
#include "obs/ledger.h"
#include "obs/metrics.h"

namespace janus {
namespace {

using obs::FlatObject;
using obs::FlatValue;
using obs::HttpExportServer;
using obs::HttpResponse;
using obs::IntrospectionHub;
using obs::Ledger;
using obs::LedgerRecord;
using obs::MetricsRegistry;

class IntrospectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Ledger::Disable();
    Ledger::Global().SetCapacityForTesting(0);  // default capacity
    IntrospectionHub::Global().ResetForTesting();
  }
  void TearDown() override {
    Ledger::Disable();
    Ledger::Global().SetCapacityForTesting(0);
    IntrospectionHub::Global().ResetForTesting();
  }
};

// Interpreter + engine pair (mirrors janus_test.cc's Session).
struct Session {
  explicit Session(EngineOptions options = EngineOptions{})
      : rng(17), interp(&variables, &rng), engine(&interp, options) {
    minipy::InstallBuiltins(interp);
    engine.Attach();
  }
  VariableStore variables;
  Rng rng;
  minipy::Interpreter interp;
  JanusEngine engine;
};

LedgerRecord MakeRecord(const char* kind, std::string detail = {}) {
  LedgerRecord record;
  record.kind = kind;
  record.unit = "0xabc";
  record.detail = std::move(detail);
  return record;
}

// ---- ledger ----

TEST_F(IntrospectionTest, DisabledLedgerHasFastPathGuard) {
  ASSERT_FALSE(Ledger::Enabled());
  // Producer sites all guard on Enabled(); a full engine session with the
  // recorder off must publish nothing.
  const std::int64_t before = Ledger::Global().TotalRecorded();
  Session session;
  session.interp.Run(R"(
w = variable('w', constant([[0.5]]))
x = constant([[1.0], [2.0]])
def fn():
    return reduce_mean(matmul(x, w))
for i in range(6):
    optimize(fn, 0.01)
)");
  EXPECT_EQ(Ledger::Global().TotalRecorded(), before);
}

TEST_F(IntrospectionTest, RingOverflowKeepsNewestRecords) {
  Ledger& ledger = Ledger::Global();
  ledger.SetCapacityForTesting(8);
  Ledger::Enable();
  for (int i = 0; i < 20; ++i) {
    ledger.Record(MakeRecord("run", "r" + std::to_string(i)));
  }
  EXPECT_EQ(ledger.TotalRecorded(), 20);
  EXPECT_EQ(ledger.TotalDropped(), 12);
  const std::vector<LedgerRecord> records = ledger.Snapshot();
  ASSERT_EQ(records.size(), 8u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    // Oldest-first, exactly the last capacity records.
    EXPECT_EQ(records[i].seq, static_cast<std::int64_t>(12 + i));
    EXPECT_EQ(records[i].detail, "r" + std::to_string(12 + i));
  }
}

TEST_F(IntrospectionTest, SnapshotHonorsMaxRecords) {
  Ledger& ledger = Ledger::Global();
  ledger.SetCapacityForTesting(16);
  Ledger::Enable();
  for (int i = 0; i < 10; ++i) ledger.Record(MakeRecord("run"));
  const std::vector<LedgerRecord> records = ledger.Snapshot(3);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records.front().seq, 7);
  EXPECT_EQ(records.back().seq, 9);
}

TEST_F(IntrospectionTest, JsonLineEscapesAndValidates) {
  LedgerRecord record = MakeRecord("fallback");
  record.name = "loss_fn";
  record.assumption = "shape:x";
  record.assumed = "say \"hi\"\nline\ttab\\end";
  record.observed = std::string("ctl\x01");
  record.level = 2;
  record.cache_hit = 1;
  record.execute_ns = 1234;
  Ledger::Enable();
  Ledger::Global().SetCapacityForTesting(4);
  Ledger::Global().Record(record);
  const std::vector<LedgerRecord> records = Ledger::Global().Snapshot();
  ASSERT_EQ(records.size(), 1u);

  const std::string line = Ledger::ToJsonLine(records[0]);
  std::string error;
  FlatObject fields;
  ASSERT_TRUE(obs::ValidateLedgerLine(line, &fields, &error)) << error;
  EXPECT_EQ(fields["kind"].text, "fallback");
  EXPECT_EQ(fields["assumption"].text, "shape:x");
  // Escapes decode back to the original strings.
  EXPECT_EQ(fields["assumed"].text, record.assumed);
  EXPECT_EQ(fields["observed"].kind, FlatValue::Kind::kString);
  EXPECT_EQ(fields["level"].text, "2");
  EXPECT_EQ(fields["execute_ns"].text, "1234");
}

TEST_F(IntrospectionTest, LedgerLineValidatorRejectsBadRecords) {
  std::string error;
  EXPECT_FALSE(obs::ValidateLedgerLine("{\"seq\":1}", nullptr, &error));
  EXPECT_NE(error.find("ts_ns"), std::string::npos);
  EXPECT_FALSE(obs::ValidateLedgerLine(
      "{\"seq\":1,\"ts_ns\":2}", nullptr, &error));
  EXPECT_NE(error.find("kind"), std::string::npos);
  EXPECT_FALSE(obs::ValidateLedgerLine(
      "{\"seq\":\"one\",\"ts_ns\":2,\"kind\":\"run\"}", nullptr, &error));
  EXPECT_FALSE(obs::ValidateLedgerLine(
      "{\"seq\":1,\"ts_ns\":2,\"kind\":\"run\",\"nested\":{}}", nullptr,
      &error));
  EXPECT_TRUE(obs::ValidateLedgerLine(
      "{\"seq\":1,\"ts_ns\":2,\"kind\":\"run\"}", nullptr, &error)) << error;
}

TEST_F(IntrospectionTest, ThreadedWritersNeverTearRecords) {
  Ledger& ledger = Ledger::Global();
  ledger.SetCapacityForTesting(64);
  Ledger::Enable();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ledger, t] {
      const std::string tag = "writer-" + std::to_string(t) +
                              "-payload-payload-payload";
      for (int i = 0; i < kPerThread; ++i) {
        LedgerRecord record;
        record.kind = "run";
        record.unit = tag;    // same string in two fields: a torn slot
        record.detail = tag;  // would disagree
        ledger.Record(std::move(record));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(ledger.TotalRecorded(), kThreads * kPerThread);
  const std::vector<LedgerRecord> records = ledger.Snapshot();
  EXPECT_FALSE(records.empty());
  for (const LedgerRecord& record : records) {
    EXPECT_EQ(record.unit, record.detail);
    EXPECT_NE(record.unit.find("writer-"), std::string::npos);
  }
}

TEST_F(IntrospectionTest, WriteJsonlProducesValidatableFile) {
  Ledger& ledger = Ledger::Global();
  ledger.SetCapacityForTesting(16);
  Ledger::Enable();
  for (int i = 0; i < 5; ++i) {
    ledger.Record(MakeRecord("generation", "g" + std::to_string(i)));
  }
  const std::string path =
      ::testing::TempDir() + "/introspection_test_ledger.jsonl";
  ASSERT_TRUE(ledger.WriteJsonl(path));
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  int lines = 0;
  std::string line;
  while (std::getline(file, line)) {
    if (line.empty()) continue;
    std::string error;
    EXPECT_TRUE(obs::ValidateLedgerLine(line, nullptr, &error))
        << line << ": " << error;
    ++lines;
  }
  EXPECT_EQ(lines, 5);
  std::remove(path.c_str());
}

// ---- Prometheus exposition ----

TEST_F(IntrospectionTest, MetricNameSanitization) {
  EXPECT_EQ(obs::PrometheusMetricName("engine.graph_executions"),
            "janus_engine_graph_executions");
  EXPECT_EQ(obs::PrometheusMetricName("cache.hits"), "janus_cache_hits");
  EXPECT_EQ(obs::PrometheusMetricName("weird-name$x"), "janus_weird_name_x");
  EXPECT_EQ(obs::PrometheusMetricName("a:b_c9"), "janus_a:b_c9");
}

TEST_F(IntrospectionTest, LabelValueEscaping) {
  EXPECT_EQ(obs::PrometheusEscapeLabelValue("plain"), "plain");
  EXPECT_EQ(obs::PrometheusEscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::PrometheusEscapeLabelValue("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(obs::PrometheusEscapeLabelValue("two\nlines"), "two\\nlines");
}

TEST_F(IntrospectionTest, RendersCountersAndValidates) {
  MetricsRegistry registry;
  registry.GetCounter("engine.fallbacks").Add(3);
  IntrospectionHub::Global().RegisterMetricsSource(&registry);

  const std::string text = obs::RenderPrometheusText();
  EXPECT_NE(text.find("# TYPE janus_engine_fallbacks counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("janus_engine_fallbacks 3\n"), std::string::npos);
  // The ledger's own counters are always exported.
  EXPECT_NE(text.find("janus_ledger_records_total"), std::string::npos);

  std::string error;
  obs::PrometheusSummary summary;
  ASSERT_TRUE(obs::ValidatePrometheusText(text, &error, &summary)) << error;
  EXPECT_GT(summary.num_samples, 0);
  EXPECT_NE(summary.families.count("janus_engine_fallbacks"), 0u);
  IntrospectionHub::Global().UnregisterMetricsSource(&registry);
}

TEST_F(IntrospectionTest, RendersHistogramBucketsSumAndCount) {
  MetricsRegistry registry;
  obs::Histogram& histogram = registry.GetHistogram("engine.imperative_ns");
  histogram.Record(5);
  histogram.Record(100);
  IntrospectionHub::Global().RegisterMetricsSource(&registry);

  const std::string text = obs::RenderPrometheusText();
  EXPECT_NE(text.find("# TYPE janus_engine_imperative_ns histogram\n"),
            std::string::npos);
  // Cumulative buckets end at +Inf == count; sum and count trail.
  EXPECT_NE(text.find("janus_engine_imperative_ns_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("janus_engine_imperative_ns_sum 105\n"),
            std::string::npos);
  EXPECT_NE(text.find("janus_engine_imperative_ns_count 2\n"),
            std::string::npos);
  // The le="7" bucket (values 4..7) holds the 5; cumulative count 1.
  EXPECT_NE(text.find("janus_engine_imperative_ns_bucket{le=\"7\"} 1\n"),
            std::string::npos);

  std::string error;
  ASSERT_TRUE(obs::ValidatePrometheusText(text, &error, nullptr)) << error;
  IntrospectionHub::Global().UnregisterMetricsSource(&registry);
}

TEST_F(IntrospectionTest, KernelTimersCollapseIntoLabeledFamily) {
  MetricsRegistry registry;
  registry.GetHistogram("kernel.Add").Record(10);
  registry.GetHistogram("kernel.MatMul").Record(20);
  IntrospectionHub::Global().RegisterMetricsSource(&registry);

  const std::string text = obs::RenderPrometheusText();
  EXPECT_NE(text.find("# TYPE janus_kernel_ns histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("janus_kernel_ns_bucket{op=\"Add\","),
            std::string::npos);
  EXPECT_NE(text.find("janus_kernel_ns_count{op=\"MatMul\"} 1\n"),
            std::string::npos);
  // Not exported as separate families.
  EXPECT_EQ(text.find("janus_kernel_Add"), std::string::npos);

  std::string error;
  ASSERT_TRUE(obs::ValidatePrometheusText(text, &error, nullptr)) << error;
  IntrospectionHub::Global().UnregisterMetricsSource(&registry);
}

TEST_F(IntrospectionTest, PrometheusValidatorRejectsNonFiniteSamples) {
  std::string error;
  EXPECT_FALSE(obs::ValidatePrometheusText("janus_x NaN\n", &error, nullptr));
  EXPECT_NE(error.find("non-finite"), std::string::npos) << error;
  EXPECT_FALSE(obs::ValidatePrometheusText("janus_x +Inf\n", &error, nullptr));
  EXPECT_NE(error.find("non-finite"), std::string::npos) << error;
  EXPECT_FALSE(obs::ValidatePrometheusText("janus_x -Inf\n", &error, nullptr));
  // Values that overflow double parse to infinity and are just as broken.
  EXPECT_FALSE(obs::ValidatePrometheusText("janus_x 1e999\n", &error, nullptr));
  EXPECT_NE(error.find("non-finite"), std::string::npos) << error;
  // Finite values, including negative and exponent forms, stay valid.
  EXPECT_TRUE(obs::ValidatePrometheusText("janus_x -3.5e2\n", &error, nullptr))
      << error;
  // The "+Inf" histogram-bucket LABEL is part of the format, not a sample
  // value, and must still be accepted.
  EXPECT_TRUE(obs::ValidatePrometheusText(
      "janus_h_bucket{le=\"+Inf\"} 2\n", &error, nullptr))
      << error;
}

TEST_F(IntrospectionTest, PrometheusValidatorRejectsDuplicateSeries) {
  std::string error;
  // Same bare series twice.
  EXPECT_FALSE(obs::ValidatePrometheusText("janus_x 1\njanus_x 2\n", &error,
                                           nullptr));
  EXPECT_NE(error.find("duplicate series"), std::string::npos) << error;
  // Same labeled series with the labels in a different order: still the
  // same series identity.
  EXPECT_FALSE(obs::ValidatePrometheusText(
      "janus_x{a=\"1\",b=\"2\"} 1\njanus_x{b=\"2\",a=\"1\"} 2\n", &error,
      nullptr));
  EXPECT_NE(error.find("duplicate series"), std::string::npos) << error;
  // Different label values are distinct series and fine.
  EXPECT_TRUE(obs::ValidatePrometheusText(
      "janus_x{a=\"1\"} 1\njanus_x{a=\"2\"} 2\n", &error, nullptr))
      << error;
  // Same name with and without labels are distinct series too.
  EXPECT_TRUE(obs::ValidatePrometheusText(
      "janus_x 1\njanus_x{a=\"1\"} 2\n", &error, nullptr))
      << error;
}

TEST_F(IntrospectionTest, UnregisteredSourcesRetireInsteadOfVanishing) {
  {
    MetricsRegistry registry;
    registry.GetCounter("engine.graph_executions").Add(7);
    IntrospectionHub::Global().RegisterMetricsSource(&registry);
    IntrospectionHub::Global().UnregisterMetricsSource(&registry);
  }  // registry destroyed; the fold must have copied the values out
  const auto counters = IntrospectionHub::Global().MergedCounters();
  const auto it = counters.find("engine.graph_executions");
  ASSERT_NE(it, counters.end());
  EXPECT_GE(it->second, 7);

  const int id = IntrospectionHub::Global().RegisterStatusSource(
      "engine test", [] { return std::string("final words"); });
  IntrospectionHub::Global().UnregisterStatusSource(id);
  const std::string status = IntrospectionHub::Global().StatusText();
  EXPECT_NE(status.find("[retired]"), std::string::npos);
  EXPECT_NE(status.find("final words"), std::string::npos);
}

// ---- HTTP routing ----

TEST_F(IntrospectionTest, HandlePathRoutes) {
  EXPECT_EQ(HttpExportServer::HandlePath("/healthz").body, "ok\n");
  EXPECT_EQ(HttpExportServer::HandlePath("/healthz").status, 200);
  EXPECT_EQ(HttpExportServer::HandlePath("/no-such").status, 404);
  EXPECT_NE(HttpExportServer::HandlePath("/").body.find("/metrics"),
            std::string::npos);
  const HttpResponse metrics = HttpExportServer::HandlePath("/metrics");
  EXPECT_EQ(metrics.content_type, "text/plain; version=0.0.4; charset=utf-8");
  std::string error;
  EXPECT_TRUE(obs::ValidatePrometheusText(metrics.body, &error, nullptr))
      << error;
}

TEST_F(IntrospectionTest, FlightzServesRecentRecordsWithLimit) {
  Ledger& ledger = Ledger::Global();
  ledger.SetCapacityForTesting(16);
  Ledger::Enable();
  for (int i = 0; i < 5; ++i) {
    ledger.Record(MakeRecord("run", "r" + std::to_string(i)));
  }
  const HttpResponse response = HttpExportServer::HandlePath("/flightz?n=2");
  std::istringstream lines(response.body);
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    std::string error;
    EXPECT_TRUE(obs::ValidateLedgerLine(line, nullptr, &error)) << error;
    ++count;
  }
  EXPECT_EQ(count, 2);
  // The newest records are served.
  EXPECT_NE(response.body.find("r4"), std::string::npos);
}

// ---- end-to-end socket scrape ----

std::string HttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    return {};
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  ::send(fd, request.data(), request.size(), MSG_NOSIGNAL);
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string BodyOf(const std::string& response) {
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? std::string()
                                    : response.substr(split + 4);
}

TEST_F(IntrospectionTest, EndToEndScrapeOfLiveEngine) {
  Session session;
  session.interp.Run(R"(
w = variable('w', constant([[0.5]]))
x = constant([[1.0], [2.0]])
def fn():
    return reduce_mean(matmul(x, w))
for i in range(8):
    optimize(fn, 0.01)
)");
  HttpExportServer& server = HttpExportServer::Global();
  ASSERT_TRUE(server.Start(0));  // free port
  ASSERT_GT(server.port(), 0);

  const std::string metrics_response = HttpGet(server.port(), "/metrics");
  EXPECT_NE(metrics_response.find("HTTP/1.1 200 OK"), std::string::npos);
  const std::string metrics = BodyOf(metrics_response);
  std::string error;
  obs::PrometheusSummary summary;
  ASSERT_TRUE(obs::ValidatePrometheusText(metrics, &error, &summary))
      << error;
  EXPECT_NE(summary.families.count("janus_engine_graph_executions"), 0u);
  EXPECT_NE(metrics.find("janus_engine_graph_executions"), std::string::npos);

  const std::string statusz = BodyOf(HttpGet(server.port(), "/statusz"));
  EXPECT_NE(statusz.find("per-unit despecialization ladder"),
            std::string::npos);
  EXPECT_NE(statusz.find("fn ["), std::string::npos);  // the unit's name

  EXPECT_EQ(BodyOf(HttpGet(server.port(), "/healthz")), "ok\n");
  server.Stop();
  EXPECT_FALSE(server.running());
}

// ---- fallback attribution ----

TEST_F(IntrospectionTest, ForcedFallbackNamesFailingAssumption) {
  Ledger::Global().SetCapacityForTesting(1024);
  Ledger::Enable();
  Session session;
  // Stable branch during profiling, then flipped: the speculative graph's
  // AssertOp fails and the engine falls back (Fig. 2 (E)).
  session.interp.Run(R"(
w = variable('sw', constant([2.0]))
mode = constant([1.0])

def loss_fn():
    h = w * 3.0
    if reduce_sum(mode) > 0.0:
        out = h * h
    else:
        out = h + 100.0
    return reduce_sum(out)

for i in range(8):
    optimize(loss_fn, 0.0)

mode = constant([-1.0])
for i in range(4):
    optimize(loss_fn, 0.0)
)");
  ASSERT_GE(session.engine.stats().fallbacks, 1);

  const std::vector<LedgerRecord> records = Ledger::Global().Snapshot();
  const LedgerRecord* fallback = nullptr;
  const LedgerRecord* assert_failure = nullptr;
  for (const LedgerRecord& record : records) {
    if (std::string_view(record.kind) == "fallback" &&
        !record.assumption.empty()) {
      fallback = &record;
    }
    if (std::string_view(record.kind) == "assert_failure") {
      assert_failure = &record;
    }
  }
  // The engine-side record carries the unit context and the exact failing
  // assumption with its assumed-vs-observed rendering.
  ASSERT_NE(fallback, nullptr);
  EXPECT_EQ(fallback->name, "loss_fn");
  EXPECT_EQ(fallback->assumption.rfind("branch:", 0), 0u)
      << fallback->assumption;
  EXPECT_EQ(fallback->assumed, "branch taken");
  EXPECT_NE(fallback->observed.find("Tensor<bool"), std::string::npos)
      << fallback->observed;
  // The executor-side record names the same assumption at the kernel site.
  ASSERT_NE(assert_failure, nullptr);
  EXPECT_EQ(assert_failure->assumption, fallback->assumption);
  EXPECT_NE(assert_failure->detail.find("Assert"), std::string::npos);

  // The per-unit ladder section of the status report names the unit.
  const std::string report = session.engine.StatsReport();
  EXPECT_NE(report.find("per-unit despecialization ladder"),
            std::string::npos);
  EXPECT_NE(report.find("loss_fn ["), std::string::npos);
}

}  // namespace
}  // namespace janus
