// Tests for the pooled tensor allocator (tensor/buffer_pool.h) and the
// plan-time liveness analysis that feeds it (runtime/memory_plan.h):
// size-class geometry, freelist reuse, concurrent alloc/free, Trim bounds,
// the single-zeroing-path contract of Tensor::Zeros over recycled storage,
// and mid-run recycling / in-place reuse through the DAG executor.
#include "tensor/buffer_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "runtime/executor.h"
#include "runtime/memory_plan.h"
#include "runtime/plan.h"
#include "tensor/tensor.h"

namespace janus {
namespace {

TEST(BufferPoolTest, SizeClassGeometry) {
  EXPECT_EQ(BufferPool::SizeClassFor(1), 0);
  EXPECT_EQ(BufferPool::SizeClassFor(BufferPool::kMinClassBytes), 0);
  EXPECT_EQ(BufferPool::SizeClassFor(BufferPool::kMinClassBytes + 1), 1);
  EXPECT_EQ(BufferPool::SizeClassFor(128), 1);
  EXPECT_EQ(BufferPool::SizeClassFor(129), 2);
  EXPECT_EQ(BufferPool::ClassBytes(0), BufferPool::kMinClassBytes);
  // Each class doubles; every request rounds up to its class capacity.
  for (int c = 0; c < BufferPool::kNumClasses; ++c) {
    const std::size_t bytes = BufferPool::ClassBytes(c);
    EXPECT_EQ(bytes, BufferPool::kMinClassBytes << c);
    EXPECT_EQ(BufferPool::SizeClassFor(bytes), c);
  }
  // Beyond the largest class: oversize, never pooled.
  const std::size_t largest =
      BufferPool::ClassBytes(BufferPool::kNumClasses - 1);
  EXPECT_EQ(BufferPool::SizeClassFor(largest + 1), BufferPool::kNumClasses);
}

TEST(BufferPoolTest, ReuseAfterRelease) {
  const Shape shape{8, 8};
  const void* first_id = nullptr;
  {
    const Tensor t = Tensor::Uninitialized(DType::kFloat32, shape);
    first_id = t.data_id();
  }  // released to the thread cache
  const BufferPool::Stats before = BufferPool::Global().Snapshot();
  const Tensor again = Tensor::Uninitialized(DType::kFloat32, shape);
  const BufferPool::Stats after = BufferPool::Global().Snapshot();
  // LIFO thread cache: the very block just released comes back.
  EXPECT_EQ(again.data_id(), first_id);
  EXPECT_EQ(after.pool_hits, before.pool_hits + 1);
  EXPECT_EQ(after.pool_misses, before.pool_misses);
}

TEST(BufferPoolTest, OversizeAllocationsBypassThePool) {
  // 3 MiB of floats: beyond the largest (2 MiB) class.
  const Shape shape{3 * 256 * 1024};
  const BufferPool::Stats before = BufferPool::Global().Snapshot();
  { const Tensor t = Tensor::Uninitialized(DType::kFloat32, shape); }
  { const Tensor t = Tensor::Uninitialized(DType::kFloat32, shape); }
  const BufferPool::Stats after = BufferPool::Global().Snapshot();
  // Both allocations are fresh (no freelist), and neither release retained
  // anything.
  EXPECT_EQ(after.pool_misses, before.pool_misses + 2);
  EXPECT_EQ(after.pool_hits, before.pool_hits);
  EXPECT_EQ(after.retained_bytes, before.retained_bytes);
}

TEST(BufferPoolTest, TrimReleasesRetainedBlocks) {
  const Shape shape{256};  // 1 KiB
  {
    std::vector<Tensor> live;
    for (int i = 0; i < 16; ++i) {
      live.push_back(Tensor::Uninitialized(DType::kFloat32, shape));
    }
  }  // all 16 released; some spill from the thread cache to central
  const BufferPool::Stats held = BufferPool::Global().Snapshot();
  EXPECT_GE(held.retained_bytes, 16 * 1024);
  BufferPool::Global().Trim();
  const BufferPool::Stats trimmed = BufferPool::Global().Snapshot();
  EXPECT_EQ(trimmed.trims, held.trims + 1);
  EXPECT_LT(trimmed.retained_bytes, held.retained_bytes);
  // The calling thread's cache was flushed and central was emptied, so the
  // next allocation cannot be served from a freelist.
  const Tensor fresh = Tensor::Uninitialized(DType::kFloat32, shape);
  const BufferPool::Stats after = BufferPool::Global().Snapshot();
  EXPECT_EQ(after.pool_misses, trimmed.pool_misses + 1);
}

TEST(BufferPoolTest, ZerosAreZeroOverRecycledDirtyBuffer) {
  const Shape shape{8, 8};
  const void* dirty_id = nullptr;
  {
    Tensor dirty = Tensor::Full(shape, 123.0f);
    dirty_id = dirty.data_id();
  }  // the all-123 block returns to the thread cache
  // Zeros must establish zeroes itself (the single zeroing path): the
  // recycled payload arrives with the old contents.
  const Tensor z = Tensor::Zeros(DType::kFloat32, shape);
  EXPECT_EQ(z.data_id(), dirty_id);
  for (const float v : z.data<float>()) EXPECT_EQ(v, 0.0f);
}

TEST(BufferPoolTest, ConcurrentAllocFreeIsConsistent) {
  constexpr int kTasks = 8;
  constexpr int kIterations = 500;
  const BufferPool::Stats before = BufferPool::Global().Snapshot();
  std::atomic<int> failures{0};
  {
    ThreadPool pool(4);
    for (int task = 0; task < kTasks; ++task) {
      pool.Schedule([task, &failures] {
        for (int i = 0; i < kIterations; ++i) {
          const std::int64_t n = 16 + 64 * ((task + i) % 5);
          Tensor t = Tensor::Uninitialized(DType::kFloat32, Shape{n});
          const float fill = static_cast<float>(task * 1000 + i);
          for (float& v : t.mutable_data<float>()) v = fill;
          for (const float v : t.data<float>()) {
            if (v != fill) failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
  }  // ThreadPool destructor drains the queue and joins
  EXPECT_EQ(failures.load(), 0);
  const BufferPool::Stats after = BufferPool::Global().Snapshot();
  EXPECT_EQ(after.allocations - before.allocations, kTasks * kIterations);
  // Every allocation is either a freelist hit or a fresh block.
  EXPECT_EQ((after.pool_hits - before.pool_hits) +
                (after.pool_misses - before.pool_misses),
            kTasks * kIterations);
}

TEST(MemoryPlanTest, InPlaceAllowlistIsSameIndexOnly) {
  EXPECT_TRUE(OpSupportsInPlace("Add"));
  EXPECT_TRUE(OpSupportsInPlace("Relu"));
  EXPECT_TRUE(OpSupportsInPlace("ReluGrad"));
  EXPECT_TRUE(OpSupportsInPlace("LogicalNot"));
  EXPECT_FALSE(OpSupportsInPlace("Transpose"));
  EXPECT_FALSE(OpSupportsInPlace("MatMul"));
  EXPECT_FALSE(OpSupportsInPlace("ReduceSum"));
  EXPECT_FALSE(OpSupportsInPlace("BroadcastTo"));
}

TEST(MemoryPlanTest, BuildComputesReadsProtectionAndCapability) {
  Graph g;
  const NodeOutput c = g.Constant(Tensor::Full(Shape{2, 3}, 1.0f));
  Node* t1 = g.AddNode("Transpose", {c});
  Node* add = g.AddNode("Add", {{t1, 0}, {t1, 0}});
  const std::vector<NodeOutput> fetches{{add, 0}};
  const auto plan = ExecutionPlan::Build(g, fetches);
  const MemoryPlan& mem = plan->memory();
  ASSERT_EQ(mem.dag.size(), plan->dag_nodes().size());

  const int ci = plan->DagIndexOf(c.node);
  const int t1i = plan->DagIndexOf(t1);
  const int addi = plan->DagIndexOf(add);
  ASSERT_GE(ci, 0);
  ASSERT_GE(t1i, 0);
  ASSERT_GE(addi, 0);
  EXPECT_EQ(mem.dag[static_cast<std::size_t>(ci)].output_reads, 1);
  // Both Add inputs read t1: two counted reads.
  EXPECT_EQ(mem.dag[static_cast<std::size_t>(t1i)].output_reads, 2);
  EXPECT_FALSE(mem.dag[static_cast<std::size_t>(t1i)].fetch_protected);
  EXPECT_FALSE(mem.dag[static_cast<std::size_t>(t1i)].in_place_capable);
  EXPECT_EQ(mem.dag[static_cast<std::size_t>(addi)].output_reads, 0);
  EXPECT_TRUE(mem.dag[static_cast<std::size_t>(addi)].fetch_protected);
  EXPECT_TRUE(mem.dag[static_cast<std::size_t>(addi)].in_place_capable);
}

class MemoryPlanLivenessTest : public ::testing::Test {
 protected:
  std::vector<Tensor> Run(const Graph& g, std::vector<NodeOutput> fetches,
                          RunMetrics* metrics) {
    Executor executor(&library_, &variables_, nullptr, &rng_);
    return executor.Run(g, {}, fetches, metrics);
  }

  FunctionLibrary library_;
  VariableStore variables_;
  Rng rng_{7};
};

TEST_F(MemoryPlanLivenessTest, IntermediateBuffersRecycleWithinOneRun) {
  // A chain of Transposes (NOT in-place capable): node k's freshly
  // allocated output must be served from node k-2's mid-run-released
  // buffer, so even a cold pool sees at most two fresh blocks.
  constexpr int kChain = 8;
  Graph g;
  NodeOutput v = g.Constant(Tensor::Full(Shape{8, 8}, 3.0f));
  for (int i = 0; i < kChain; ++i) {
    v = {g.AddNode("Transpose", {v}), 0};
  }
  // Force the process-global default-Tensor zero buffer into existence so
  // its one-time allocation doesn't count against this run.
  const Tensor warm_default;
  BufferPool::Global().Trim();  // cold pool: recycling must come from within
  RunMetrics metrics;
  const std::vector<Tensor> results = Run(g, {v}, &metrics);
  ASSERT_EQ(results.size(), 1u);
  for (const float x : results[0].data<float>()) EXPECT_EQ(x, 3.0f);
  EXPECT_LE(metrics.pool_misses, 2);
  EXPECT_GE(metrics.pool_hits, kChain - 2);
  // Every transpose output but the fetched one (plus the const's slot) was
  // dropped the moment its consumer finished reading it.
  EXPECT_GE(metrics.buffers_released, kChain - 1);
  EXPECT_EQ(metrics.in_place_reuses, 0);  // Transpose never writes in place
}

TEST_F(MemoryPlanLivenessTest, ElementwiseChainRunsInPlace) {
  constexpr int kChain = 8;
  Graph g;
  NodeOutput v = g.Constant(Tensor::Full(Shape{8, 8}, 1.0f));
  const NodeOutput one = g.Constant(Tensor::Full(Shape{8, 8}, 1.0f));
  for (int i = 0; i < kChain; ++i) {
    v = {g.AddNode("Add", {v, one}), 0};
  }
  // Per-op in-place reuse is what this test measures; fusion would collapse
  // the whole chain into one region with no intermediates at all.
  const std::vector<NodeOutput> fetches{v};
  const auto plan = ExecutionPlan::Build(g, fetches, {.enable_fusion = false});
  Executor executor(&library_, &variables_, nullptr, &rng_);
  RunMetrics metrics;
  const std::vector<Tensor> results = executor.Run(*plan, {}, &metrics);
  ASSERT_EQ(results.size(), 1u);
  for (const float x : results[0].data<float>()) {
    EXPECT_EQ(x, 1.0f + kChain);
  }
  // Every Add but the first (whose inputs are protected const values)
  // steals its dead input's buffer instead of allocating.
  EXPECT_GE(metrics.in_place_reuses, kChain - 1);
}

TEST_F(MemoryPlanLivenessTest, FetchedValuesSurviveRecycling) {
  // Fetch an intermediate AND the chain end: the intermediate is
  // fetch-protected, so recycling must not clobber it even though a later
  // node consumes it.
  Graph g;
  const NodeOutput c = g.Constant(Tensor::Full(Shape{4, 4}, 2.0f));
  const NodeOutput mid = {g.AddNode("Transpose", {c}), 0};
  const NodeOutput end = {g.AddNode("Transpose", {mid}), 0};
  RunMetrics metrics;
  const std::vector<Tensor> results = Run(g, {mid, end}, &metrics);
  ASSERT_EQ(results.size(), 2u);
  for (const float x : results[0].data<float>()) EXPECT_EQ(x, 2.0f);
  for (const float x : results[1].data<float>()) EXPECT_EQ(x, 2.0f);
}

}  // namespace
}  // namespace janus
