// Table 1: framework comparison on correctly supported dynamic features
// (dynamic control flow, dynamic types, impure functions) and on the
// ability to optimise with runtime information. Each cell is established
// empirically: a probe program exercising exactly one feature runs under
// each framework configuration and its result is compared against the
// imperative executor's ground truth.
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>

#include "bench/bench_util.h"
#include "frontend/builtins.h"

namespace janus::bench {
namespace {

struct Probe {
  std::string feature;
  std::string program;   // definition + warm-up phase
  std::string flip;      // context change that a correct framework tracks
  std::string readback;  // sets global `probe_out`
};

// DCF: a branch whose direction flips after warm-up.
const Probe kDcfProbe{
    "DCF (dynamic control flow)",
    R"(
flag = constant([1.0])
w = variable('w', constant([2.0]))
def fn():
    if reduce_sum(flag) > 0.5:
        return reduce_sum(w * 2.0)
    return reduce_sum(w * 100.0)
for i in range(6):
    out = optimize(fn, 0.0)
)",
    "flag = constant([-1.0])\n",
    "probe_out = float(optimize(fn, 0.0))\n"};

// DT: a closure variable whose tensor shape changes after warm-up.
const Probe kDtProbe{
    "DT (dynamic types)",
    R"(
data = ones([4, 2])
w = variable('w2', constant([[1.0], [1.0]]))
def fn():
    return reduce_sum(matmul(data, w))
for i in range(6):
    out = optimize(fn, 0.0)
)",
    "data = ones([3, 2]) * 2.0\n",
    "probe_out = float(optimize(fn, 0.0))\n"};

// IF: state passed between calls through an object attribute.
const Probe kIfProbe{
    "IF (impure functions)",
    R"(
class Counter:
    def __init__(self):
        self.total = constant([0.0])
    def bump(self):
        self.total = self.total + 1.0
        return reduce_sum(self.total)
c = Counter()
for i in range(6):
    out = optimize(lambda: c.bump(), 0.0)
)",
    "",
    "probe_out = float(optimize(lambda: c.bump(), 0.0))\n"};

struct Session {
  Session(const EngineOptions& options)
      : rng(99), interp(&variables, &rng), engine(&interp, options) {
    minipy::InstallBuiltins(interp);
    engine.Attach();
  }
  VariableStore variables;
  Rng rng;
  minipy::Interpreter interp;
  JanusEngine engine;
};

double RunProbe(const Probe& probe, const EngineOptions& options) {
  Session session(options);
  session.interp.Run(probe.program);
  if (!probe.flip.empty()) session.interp.Run(probe.flip);
  session.interp.Run(probe.readback);
  const auto v = session.interp.GetGlobal("probe_out");
  return std::get<double>(v);
}

int Run() {
  std::printf("Table 1: correctness of dynamic-feature support\n");
  std::printf("(empirical: probe result compared with the imperative "
              "ground truth)\n\n");
  std::printf("%-30s %12s %12s %12s\n", "Feature", "Imperative", "Tracing",
              "JANUS");
  PrintRule(70);

  int janus_correct = 0;
  for (const Probe* probe : {&kDcfProbe, &kDtProbe, &kIfProbe}) {
    const double truth = RunProbe(*probe, ImperativeConfig());
    const auto verdict = [&](const EngineOptions& options) -> const char* {
      try {
        const double got = RunProbe(*probe, options);
        return std::fabs(got - truth) < 1e-3 * std::fmax(1.0, std::fabs(truth))
                   ? "correct"
                   : "WRONG";
      } catch (const Error&) {
        return "unsupported";
      }
    };
    const char* tracing = verdict(TracingConfig());
    const char* janus = verdict(JanusConfig());
    if (std::string(janus) == "correct") ++janus_correct;
    std::printf("%-30s %12s %12s %12s\n", probe->feature.c_str(), "correct",
                tracing, janus);
  }
  PrintRule(70);

  // "Optimization w/ runtime info": JANUS specialises with profile data —
  // shown by the graph-generation counter reacting to runtime shapes
  // (Fig. 4) while correctness is preserved above.
  std::printf(
      "\nOptimization w/ runtime info: JANUS = yes (profile-driven\n"
      "unrolling + shape/constant specialisation; see fig4_specialization\n"
      "and fig7_ablation). Tracing = yes but UNSAFE (cells above).\n"
      "Imperative = no graphs at all. JANUS correct on %d/3 features.\n",
      janus_correct);
  return janus_correct == 3 ? 0 : 1;
}

}  // namespace
}  // namespace janus::bench

int main() { return janus::bench::Run(); }
