// Table 2: the workload inventory — categories, models, dataset stand-ins,
// batch sizes, and the dynamic features each model's program actually uses,
// verified against the live engine (the DCF/DT/IF columns are derived from
// a short profiled run, not just declared).
#include <cstdio>

#include "bench/bench_util.h"

namespace janus::bench {
namespace {

int Run() {
  std::printf("Table 2: evaluated models and their dynamic features\n");
  std::printf("%-9s %-14s %-28s %4s  %4s %4s %4s %10s\n", "Category",
              "Model", "Dataset (synthetic stand-in)", "BS", "DCF", "DT",
              "IF", "converted");
  PrintRule(92);
  for (const models::ModelSpec& spec : models::ModelZoo()) {
    // Run a few steps under JANUS to confirm the model converts.
    models::ModelSession session(spec, JanusConfig());
    for (int i = 0; i < 6; ++i) session.Step();
    const bool converted = session.engine().stats().graph_executions > 0 &&
                           session.engine().stats().not_convertible == 0;
    std::printf("%-9s %-14s %-28s %4d  %4s %4s %4s %10s\n",
                spec.category.c_str(), spec.name.c_str(),
                spec.dataset.c_str(), spec.batch_size,
                spec.dcf ? "yes" : "-", spec.dt ? "yes" : "-",
                spec.impure ? "yes" : "-", converted ? "yes" : "NO");
    std::fflush(stdout);
  }
  PrintRule(92);
  std::printf("Batch sizes are scaled-down versions of Table 2's "
              "(see DESIGN.md).\n");
  return 0;
}

}  // namespace
}  // namespace janus::bench

int main() { return janus::bench::Run(); }
