// Table 4 (Appendix A): the language-coverage map. The paper maps every
// CPython 3.5.2 opcode to the section describing its conversion rule; our
// analogue maps every MiniPy AST construct to its Speculative Graph
// Generator rule, and counts how often each construct occurs in the model
// zoo's programs (so the table reflects the constructs the evaluation
// actually exercises).
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "frontend/parser.h"

namespace janus::bench {
namespace {

using minipy::Expr;
using minipy::ExprKind;
using minipy::Module;
using minipy::Stmt;
using minipy::StmtKind;

struct Row {
  const char* construct;
  const char* rule;  // paper-section analogue
  bool convertible;
};

// Static rule table (mirrors Table 4's section mapping).
const Row kRows[] = {
    {"literals (int/float/str/bool/None)", "§4.1 constants", true},
    {"local variables / assignment", "§4.1 dataflow edges", true},
    {"arithmetic / comparison operators", "§4.1 math ops", true},
    {"if / elif / else", "§4.2.1 speculate or Switch/Merge", true},
    {"while / for", "§4.2.1 unroll, expand, or While op", true},
    {"function calls (user)", "§4.2.1 inline or InvokeOp", true},
    {"recursive calls", "§4.2.1 InvokeOp", true},
    {"attribute read/write", "§4.2.2/§4.2.3 PyGetAttr/PySetAttr", true},
    {"subscript read/write", "§4.2.2/§4.2.3 PyGetSubscr/PySetSubscr", true},
    {"list literals / append / concat", "§4.2.2 static expansion", true},
    {"global reads (closures)", "§4.2.3 captures + entry checks", true},
    {"whitelisted builtins (matmul, ...)", "§4.3.1 one-to-one ops", true},
    {"print()", "§4.3.1 deferred PyPrint", true},
    {"assign() framework state", "§4.3.1 deferred AssignVariable", true},
    {"global writes", "§4.3.1 imperative-only", false},
    {"dict literals", "§4.3.2 imperative-only", false},
    {"lambda inside converted code", "§4.3.2 imperative-only", false},
    {"nested def / class", "§4.3.2 imperative-only", false},
    {"try / except / raise", "Appendix A imperative-only", false},
    {"yield / import / with", "parsed, rejected (§4.3.2)", false},
};

void CountStmt(const Stmt* stmt, std::map<std::string, int>& counts);

void CountExpr(const Expr* expr, std::map<std::string, int>& counts) {
  if (expr == nullptr) return;
  switch (expr->kind) {
    case ExprKind::kCall:
      ++counts["calls"];
      break;
    case ExprKind::kAttribute:
      ++counts["attributes"];
      break;
    case ExprKind::kSubscript:
      ++counts["subscripts"];
      break;
    case ExprKind::kBinary:
    case ExprKind::kCompare:
    case ExprKind::kUnary:
    case ExprKind::kBoolOp:
      ++counts["operators"];
      break;
    case ExprKind::kList:
    case ExprKind::kTuple:
      ++counts["lists"];
      break;
    default:
      break;
  }
  CountExpr(expr->left.get(), counts);
  CountExpr(expr->right.get(), counts);
  for (const auto& element : expr->elements) CountExpr(element.get(), counts);
  for (const auto& value : expr->values) CountExpr(value.get(), counts);
}

void CountBlock(const std::vector<minipy::StmtPtr>& body,
                std::map<std::string, int>& counts) {
  for (const auto& stmt : body) CountStmt(stmt.get(), counts);
}

void CountStmt(const Stmt* stmt, std::map<std::string, int>& counts) {
  switch (stmt->kind) {
    case StmtKind::kIf:
      ++counts["conditionals"];
      break;
    case StmtKind::kFor:
    case StmtKind::kWhile:
      ++counts["loops"];
      break;
    case StmtKind::kAssign:
    case StmtKind::kAugAssign:
      ++counts["assignments"];
      break;
    case StmtKind::kDef:
      ++counts["functions"];
      break;
    case StmtKind::kClass:
      ++counts["classes"];
      break;
    default:
      break;
  }
  CountExpr(stmt->target.get(), counts);
  CountExpr(stmt->value.get(), counts);
  CountBlock(stmt->body, counts);
  CountBlock(stmt->else_body, counts);
  CountBlock(stmt->finally_body, counts);
  CountBlock(stmt->methods, counts);
}

int Run() {
  std::printf("Table 4 analogue: MiniPy construct -> conversion rule\n\n");
  std::printf("%-38s %-38s %-12s\n", "Construct", "Rule", "Converted?");
  PrintRule(90);
  int convertible = 0;
  for (const Row& row : kRows) {
    std::printf("%-38s %-38s %-12s\n", row.construct, row.rule,
                row.convertible ? "graph" : "imperative");
    if (row.convertible) ++convertible;
  }
  PrintRule(90);
  std::printf("%d of %zu construct classes convert to graph elements; the\n"
              "rest run on the imperative executor (Fig. 2 (C)).\n\n",
              convertible, std::size(kRows));

  // Construct frequencies across the model zoo's programs.
  std::map<std::string, int> counts;
  for (const models::ModelSpec& spec : models::ModelZoo()) {
    const Module def = minipy::Parse(spec.definition);
    CountBlock(def.body, counts);
    if (!spec.iteration.empty()) {
      const Module iter = minipy::Parse(spec.iteration);
      CountBlock(iter.body, counts);
    }
  }
  std::printf("Construct frequency across the 11 zoo programs:\n");
  for (const auto& [name, count] : counts) {
    std::printf("  %-14s %5d\n", name.c_str(), count);
  }
  return 0;
}

}  // namespace
}  // namespace janus::bench

int main() { return janus::bench::Run(); }
