// Fig. 4: the type/shape/value specialisation hierarchy. A training
// function is driven with a stream of batch shapes; the harness reports how
// JANUS's shape assumption evolves — exact (4,8) -> relaxed (?,8) -> no
// further regeneration for new batch sizes — by watching the graph
// generation counter.
#include <cstdio>

#include "bench/bench_util.h"
#include "frontend/builtins.h"

namespace janus::bench {
namespace {

int Run() {
  std::printf("Fig. 4: shape specialisation and relaxation\n\n");
  VariableStore variables;
  Rng rng(4);
  minipy::Interpreter interp(&variables, &rng);
  minipy::InstallBuiltins(interp);
  JanusEngine engine(&interp, JanusConfig());
  engine.Attach();

  interp.Run(R"(
w = variable('w', constant([[0.1], [0.2], [0.3], [0.4], [0.5], [0.6], [0.7], [0.8]]))
batch = zeros([4, 8])
def loss_fn():
    return reduce_mean(matmul(batch, w))
)");

  const auto step_with_shape = [&](std::int64_t rows) {
    Tensor batch = Tensor::Full(Shape{rows, 8}, 1.0f);
    interp.SetGlobal("batch", std::move(batch));
    interp.Run("loss = optimize(loss_fn, 0.0)\n");
  };

  struct Phase {
    const char* label;
    std::int64_t rows;
    int steps;
  };
  const Phase phases[] = {
      {"profile + specialise on (4, 8)", 4, 6},
      {"repeat (4, 8): cached graph hits", 4, 4},
      {"switch to (3, 8): relax to (?, 8)", 3, 3},
      {"switch to (2, 8): (?, 8) already covers it", 2, 3},
      {"switch to (6, 8): (?, 8) still covers it", 6, 3},
  };
  std::printf("%-45s %6s %6s %6s\n", "phase", "gens", "hits", "misses");
  PrintRule(68);
  std::int64_t last_gens = 0;
  std::int64_t last_hits = 0;
  std::int64_t last_misses = 0;
  for (const Phase& phase : phases) {
    for (int i = 0; i < phase.steps; ++i) step_with_shape(phase.rows);
    const auto& stats = engine.stats();
    std::printf("%-45s %6lld %6lld %6lld\n", phase.label,
                static_cast<long long>(stats.graph_generations - last_gens),
                static_cast<long long>(stats.graph_executions - last_hits),
                static_cast<long long>(stats.cache_misses - last_misses));
    last_gens = stats.graph_generations;
    last_hits = stats.graph_executions;
    last_misses = stats.cache_misses;
  }
  PrintRule(68);
  std::printf(
      "Expected (paper, Fig. 4): one generation for the exact shape, one\n"
      "regeneration relaxing to (?, 8), then no generations for further\n"
      "batch sizes — the relaxed graph covers them.\n");
  return 0;
}

}  // namespace
}  // namespace janus::bench

int main() { return janus::bench::Run(); }
