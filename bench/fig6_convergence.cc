// Fig. 6: model convergence over wall-clock time on four frameworks —
// JANUS, Symbolic (hand-written-graph analogue), Imperative (TF Eager
// analogue), and Tracing (TF defun analogue). Five workloads as in the
// paper: (a) ResNet50 test accuracy, (b) LM validation perplexity,
// (c) TreeLSTM test accuracy, (d) PPO episode reward, (e) AN discriminator
// loss. The Tracing rows reproduce defun's correctness failures: the
// batch-norm branch is baked (a), cross-sequence state passing is dropped
// (b), and the monitoring state writes of (d)/(e) never commit.
#include <cstdio>

#include "bench/bench_util.h"

namespace janus::bench {
namespace {

struct Curve {
  std::string framework;
  std::vector<std::pair<double, double>> points;  // (seconds, metric)
};

Curve TrainCurve(const models::ModelSpec& spec, const std::string& framework,
                 const EngineOptions& options, int total_steps,
                 int sample_every) {
  Curve curve;
  curve.framework = framework;
  models::ModelSession session(spec, options, /*seed=*/21);
  Timer timer;
  double elapsed = 0.0;
  for (int i = 0; i < total_steps; ++i) {
    session.Step();
    if (i % sample_every == sample_every - 1) {
      elapsed += timer.Seconds();  // exclude eval cost from the clock
      const double metric = session.Eval();
      curve.points.push_back({elapsed, metric});
      timer.Reset();
    }
  }
  return curve;
}

void PrintPanel(const char* panel, const models::ModelSpec& spec,
                int total_steps, int sample_every) {
  std::printf("\n(%s) %s — %s vs wall-clock seconds\n", panel,
              spec.name.c_str(), spec.metric_name.c_str());
  const struct {
    const char* label;
    EngineOptions options;
  } frameworks[] = {
      {"JANUS", JanusConfig()},
      {"Symbolic", SymbolicConfig()},
      {"Imperative", ImperativeConfig()},
      {"Tracing", TracingConfig()},
  };
  for (const auto& fw : frameworks) {
    const Curve curve =
        TrainCurve(spec, fw.label, fw.options, total_steps, sample_every);
    std::printf("  %-11s", fw.label);
    for (const auto& [t, m] : curve.points) {
      std::printf(" (%6.2fs, %7.3f)", t, m);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
}

int Run() {
  std::printf("Fig. 6: convergence over time, four frameworks\n");
  PrintPanel("a", models::FindModel("ResNet50"), 280, 40);
  PrintPanel("b", models::FindModel("LM"), 320, 40);
  PrintPanel("c", models::FindModel("TreeLSTM"), 320, 80);
  PrintPanel("d", models::FindModel("PPO"), 400, 100);
  PrintPanel("e", models::FindModel("AN"), 160, 40);
  std::printf(
      "\nReading guide (paper): JANUS and Symbolic reach the target metric\n"
      "fastest and agree; Imperative reaches the same metric slowly;\n"
      "Tracing converges to WRONG values where dynamic features matter —\n"
      "(b) state passing dropped, (d)/(e) monitoring writes never commit.\n");
  return 0;
}

}  // namespace
}  // namespace janus::bench

int main() { return janus::bench::Run(); }
