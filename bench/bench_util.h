// Shared helpers for the per-table/per-figure benchmark harnesses.
#ifndef JANUS_BENCH_BENCH_UTIL_H_
#define JANUS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/timer.h"
#include "models/zoo.h"

namespace janus::bench {

// "release" when the JANUS sources were compiled with NDEBUG, "debug"
// otherwise. Every BENCH_*.json embeds this so CI can reject timing
// numbers from unoptimized builds (google-benchmark's own
// library_build_type context field reports how libbenchmark itself was
// built, which says nothing about our code).
inline const char* BuildTypeString() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

// Calibrated per-op dispatch cost of the imperative executor, standing in
// for CPython + TF Eager overhead (~tens of microseconds per op in the
// paper's era). All framework configs share it: JANUS and the symbolic
// executor only pay it during profiling and fallbacks, exactly as the
// paper's systems only pay Python costs outside the graph.
inline constexpr std::int64_t kEagerDispatchPenaltyNs = 30000;

// The framework configurations compared throughout the evaluation.
inline EngineOptions ImperativeConfig() {
  EngineOptions options = EngineOptions::ImperativePreset();
  options.eager_dispatch_penalty_ns = kEagerDispatchPenaltyNs;
  return options;
}

inline EngineOptions JanusConfig() {
  EngineOptions options;
  options.eager_dispatch_penalty_ns = kEagerDispatchPenaltyNs;
  return options;
}

// "Symbolic" baseline (hand-written TF graph in the paper): the same
// compiled graph executed without JANUS's speculation machinery — no
// assertion ops, immediate conversion after a single profiling run. Entry
// validation stays on (it is the feed/placeholder plumbing a hand-written
// graph would also need). This is the upper bound of Table 3 ((B)/(C)-1).
inline EngineOptions SymbolicConfig() {
  EngineOptions options;
  options.profile_threshold = 1;
  options.generator.insert_assertions = false;
  options.eager_dispatch_penalty_ns = kEagerDispatchPenaltyNs;
  return options;
}

inline EngineOptions TracingConfig() {
  EngineOptions options = EngineOptions::TracingPreset();
  options.eager_dispatch_penalty_ns = kEagerDispatchPenaltyNs;
  return options;
}

struct ThroughputResult {
  double items_per_second = 0.0;
  double seconds = 0.0;
  std::int64_t iterations = 0;
};

// Warmups (profiling + conversion), then measures wall-clock throughput.
inline ThroughputResult MeasureThroughput(models::ModelSession& session,
                                          int warmup_steps,
                                          int measure_steps) {
  for (int i = 0; i < warmup_steps; ++i) session.Step();
  Timer timer;
  for (int i = 0; i < measure_steps; ++i) session.Step();
  ThroughputResult result;
  result.seconds = timer.Seconds();
  result.iterations = measure_steps;
  result.items_per_second =
      measure_steps * session.spec().items_per_iteration / result.seconds;
  return result;
}

// Fixed-width row printing.
inline void PrintRule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace janus::bench

#endif  // JANUS_BENCH_BENCH_UTIL_H_
