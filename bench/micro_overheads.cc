// Microbenchmarks (google-benchmark) for the framework layers the paper's
// evaluation reasons about: eager per-op dispatch, graph execution per op,
// interpreter statement throughput, graph generation latency, and the
// assumption-validation cost that §6.3.1 reports as negligible.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "frontend/builtins.h"
#include "obs/ledger.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "opt/passes.h"
#include "runtime/executor.h"
#include "runtime/plan.h"
#include "tensor/buffer_pool.h"
#include "tensor/ops.h"

namespace janus {
namespace {

// Builds a chain of N Adds: the shape shared by the plan-layer benchmarks
// below so plan-build cost and per-run dispatch cost are comparable.
NodeOutput BuildAddChain(Graph& g, int n) {
  NodeOutput v = g.Constant(Tensor::Full(Shape{8, 8}, 1.0f));
  const NodeOutput one = g.Constant(Tensor::Full(Shape{8, 8}, 1.0f));
  for (int i = 0; i < n; ++i) {
    v = {g.AddNode("Add", {v, one}), 0};
  }
  return v;
}

void BM_EagerOpDispatch(benchmark::State& state) {
  VariableStore variables;
  Rng rng(1);
  minipy::EagerContext eager(&variables, &rng);
  const Tensor a = Tensor::Full(Shape{8, 8}, 1.0f);
  const Tensor b = Tensor::Full(Shape{8, 8}, 2.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eager.Execute("Add", {a, b}));
  }
}
BENCHMARK(BM_EagerOpDispatch);

void BM_GraphExecutionPerOp(benchmark::State& state) {
  // A chain of N adds executed through the DAG executor (plan cached after
  // the first run, so this measures the cached-graph hot path). Allocator
  // counters report the memory-planner effect: allocs/op should be near
  // zero (in-place reuse) and the pool hit rate near 1 after warmup.
  const int n = static_cast<int>(state.range(0));
  Graph g;
  const NodeOutput v = BuildAddChain(g, n);
  FunctionLibrary library;
  VariableStore variables;
  Rng rng(1);
  Executor executor(&library, &variables, nullptr, &rng);
  const std::vector<NodeOutput> fetches{v};
  const BufferPool::Stats before = BufferPool::Global().Snapshot();
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.Run(g, {}, fetches));
  }
  state.SetItemsProcessed(state.iterations() * n);
  const BufferPool::Stats after = BufferPool::Global().Snapshot();
  const double ops =
      static_cast<double>(state.iterations()) * static_cast<double>(n);
  const double freshes =
      static_cast<double>(after.pool_hits - before.pool_hits +
                          after.pool_misses - before.pool_misses);
  state.counters["allocs_per_op"] =
      ops > 0 ? static_cast<double>(after.allocations - before.allocations) /
                    ops
              : 0;
  state.counters["in_place_per_op"] =
      ops > 0 ? static_cast<double>(after.in_place_reuses -
                                    before.in_place_reuses) /
                    ops
              : 0;
  state.counters["pool_hit_rate"] =
      freshes > 0
          ? static_cast<double>(after.pool_hits - before.pool_hits) / freshes
          : 1.0;
}
BENCHMARK(BM_GraphExecutionPerOp)->Arg(16)->Arg(128);

void BM_BufferPoolAllocRelease(benchmark::State& state) {
  // Raw pooled alloc/release round trip at a typical kernel-output size;
  // steady state is a thread-cache pop + push with no system allocator.
  const Shape shape{8, 8};
  for (auto _ : state) {
    benchmark::DoNotOptimize(Tensor::Uninitialized(DType::kFloat32, shape));
  }
}
BENCHMARK(BM_BufferPoolAllocRelease);

void BM_PlanBuild(benchmark::State& state) {
  // Cost of compiling an ExecutionPlan from scratch: the one-time price the
  // engine pays at generation time so runs never schedule.
  const int n = static_cast<int>(state.range(0));
  Graph g;
  const NodeOutput v = BuildAddChain(g, n);
  const std::vector<NodeOutput> fetches{v};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExecutionPlan::Build(g, fetches));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PlanBuild)->Arg(16)->Arg(128);

void BM_PrebuiltPlanDispatch(benchmark::State& state) {
  // Pure dispatch over a prebuilt plan (Executor::Run(plan, ...)): the
  // cached-graph path with even the plan-cache probe removed.
  const int n = static_cast<int>(state.range(0));
  Graph g;
  const NodeOutput v = BuildAddChain(g, n);
  FunctionLibrary library;
  VariableStore variables;
  Rng rng(1);
  Executor executor(&library, &variables, nullptr, &rng);
  const auto plan = GetOrBuildPlan(g, std::vector<NodeOutput>{v});
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.Run(*plan, {}));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PrebuiltPlanDispatch)->Arg(16)->Arg(128);

void BM_FusedChain(benchmark::State& state) {
  // The fusion pass's headline effect: the same 16-op elementwise chain
  // dispatched per node (Arg 0) vs as one fused superop region (Arg 1).
  // Both run over prebuilt plans, so the delta is pure dispatch + memory
  // traffic: one kernel invocation and zero intermediate tensors against
  // sixteen invocations with an intermediate per hop.
  constexpr int kChainOps = 16;
  const bool fuse = state.range(0) != 0;
  Graph g;
  const NodeOutput v = BuildAddChain(g, kChainOps);
  FunctionLibrary library;
  VariableStore variables;
  Rng rng(1);
  Executor executor(&library, &variables, nullptr, &rng);
  const std::vector<NodeOutput> fetches{v};
  const auto plan =
      ExecutionPlan::Build(g, fetches, {.enable_fusion = fuse});
  RunMetrics metrics;
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.Run(*plan, {}, &metrics));
  }
  state.SetItemsProcessed(state.iterations() * kChainOps);
  state.counters["fused_regions"] = static_cast<double>(metrics.fused_regions);
  state.counters["fused_ops"] = static_cast<double>(metrics.fused_ops);
}
BENCHMARK(BM_FusedChain)->Arg(0)->Arg(1);

void BM_EnginePlanCaching(benchmark::State& state) {
  // Steady-state engine loop on a cached graph; counters surface the
  // compile-once/run-many split (plan_builds stays at its post-generation
  // value while plan_cache_hits grows with every run).
  VariableStore variables;
  Rng rng(1);
  minipy::Interpreter interp(&variables, &rng);
  minipy::InstallBuiltins(interp);
  JanusEngine engine(&interp, EngineOptions{});
  engine.Attach();
  interp.Run(R"(
w = variable('w', constant([[0.5]]))
x = constant([[1.0], [2.0]])
def fn():
    return reduce_mean(matmul(x, w))
for i in range(6):
    optimize(fn, 0.01)
)");
  for (auto _ : state) {
    interp.Run("optimize(fn, 0.01)\n");
  }
  state.counters["plan_builds"] =
      static_cast<double>(engine.stats().plan_builds);
  state.counters["plan_cache_hits"] =
      static_cast<double>(engine.stats().plan_cache_hits);
}
BENCHMARK(BM_EnginePlanCaching);

void BM_InterpreterStatements(benchmark::State& state) {
  VariableStore variables;
  Rng rng(1);
  minipy::Interpreter interp(&variables, &rng);
  minipy::InstallBuiltins(interp);
  interp.Run("def f(n):\n    total = 0\n    for i in range(n):\n"
             "        total = total + i\n    return total\n");
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp.EvaluateExpression("f(100)"));
  }
}
BENCHMARK(BM_InterpreterStatements);

void BM_GraphGeneration(benchmark::State& state) {
  // Full profile->generate cycle for a small training function.
  for (auto _ : state) {
    state.PauseTiming();
    VariableStore variables;
    Rng rng(1);
    minipy::Interpreter interp(&variables, &rng);
    minipy::InstallBuiltins(interp);
    JanusEngine engine(&interp, EngineOptions{});
    engine.Attach();
    interp.Run(R"(
w = variable('w', constant([[0.5]]))
x = constant([[1.0], [2.0]])
def fn():
    return reduce_mean(matmul(x, w))
for i in range(3):
    optimize(fn, 0.01)
)");
    state.ResumeTiming();
    interp.Run("optimize(fn, 0.01)\n");  // triggers the generation
  }
}
BENCHMARK(BM_GraphGeneration);

void BM_AssertionOverhead(benchmark::State& state) {
  // Graph execution with and without AssertOps (§6.3.1): toggled by arg.
  const bool with_asserts = state.range(0) != 0;
  VariableStore variables;
  Rng rng(1);
  minipy::Interpreter interp(&variables, &rng);
  minipy::InstallBuiltins(interp);
  EngineOptions options;
  options.generator.insert_assertions = with_asserts;
  JanusEngine engine(&interp, options);
  engine.Attach();
  interp.Run(R"(
w = variable('w', constant([2.0]))
mode = constant([1.0])
def fn():
    if reduce_sum(mode) > 0.0:
        h = w * 2.0
    else:
        h = w * 3.0
    return reduce_sum(h * h)
for i in range(6):
    optimize(fn, 0.0)
)");
  for (auto _ : state) {
    interp.Run("optimize(fn, 0.0)\n");
  }
}
BENCHMARK(BM_AssertionOverhead)->Arg(0)->Arg(1);

void BM_TraceOverhead(benchmark::State& state) {
  // Graph execution with the span tracer off (arg 0) vs on (arg 1), same
  // 16-op chain as BM_GraphExecutionPerOp/16. The disabled path must stay
  // within 5% of baseline: recording sites reduce to a relaxed atomic load
  // plus a branch. The enabled delta prices a full capture (spans + sampled
  // kernels into per-thread ring buffers).
  const bool tracing = state.range(0) != 0;
  const int n = 16;
  Graph g;
  const NodeOutput v = BuildAddChain(g, n);
  FunctionLibrary library;
  VariableStore variables;
  Rng rng(1);
  Executor executor(&library, &variables, nullptr, &rng);
  const std::vector<NodeOutput> fetches{v};
  if (tracing) {
    obs::Trace::Enable();
  } else {
    obs::Trace::Disable();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.Run(g, {}, fetches));
  }
  state.SetItemsProcessed(state.iterations() * n);
  if (tracing) {
    state.counters["events_recorded"] =
        static_cast<double>(obs::Trace::TotalRecorded());
    obs::Trace::Disable();
    obs::Trace::Reset();
  }
}
BENCHMARK(BM_TraceOverhead)->Arg(0)->Arg(1);

void BM_ProfileOverhead(benchmark::State& state) {
  // Graph execution with the source-attributed profiler off (arg 0) vs on
  // (arg 1), same 16-op chain as BM_GraphExecutionPerOp/16. The disabled
  // path must stay within noise of baseline: the per-node hook is one
  // relaxed atomic load plus a branch. The enabled delta prices a jittered
  // 1-in-16 sample (two clock reads + relaxed adds on the plan's own slot
  // array) amortized over every node execution.
  const bool profiling = state.range(0) != 0;
  const int n = 16;
  Graph g;
  const NodeOutput v = BuildAddChain(g, n);
  FunctionLibrary library;
  VariableStore variables;
  Rng rng(1);
  Executor executor(&library, &variables, nullptr, &rng);
  const std::vector<NodeOutput> fetches{v};
  if (profiling) {
    obs::EnableProfiling();
  } else {
    obs::DisableProfiling();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.Run(g, {}, fetches));
  }
  state.SetItemsProcessed(state.iterations() * n);
  if (profiling) {
    std::uint64_t sampled = 0;
    for (const auto& profile : obs::ProfileRegistry::Global().Profiles()) {
      for (int i = 0; i < profile->num_nodes(); ++i) {
        sampled += profile->Snapshot(i).count;
      }
    }
    state.counters["samples_recorded"] = static_cast<double>(sampled);
    obs::DisableProfiling();
    obs::ProfileRegistry::Global().Reset();
  }
}
BENCHMARK(BM_ProfileOverhead)->Arg(0)->Arg(1);

void BM_LedgerOverhead(benchmark::State& state) {
  // Full engine decision loop on a cached graph with the speculation
  // flight recorder off (arg 0) vs on (arg 1). The engine's record sites
  // guard on Ledger::Enabled(), so the disabled pair member prices the
  // one-relaxed-load-plus-branch fast path against the BM_EnginePlanCaching
  // baseline; the enabled delta prices building and publishing one "run"
  // record (strings + a wait-free ring slot) per step.
  const bool recording = state.range(0) != 0;
  VariableStore variables;
  Rng rng(1);
  minipy::Interpreter interp(&variables, &rng);
  minipy::InstallBuiltins(interp);
  JanusEngine engine(&interp, EngineOptions{});
  engine.Attach();
  interp.Run(R"(
w = variable('w', constant([[0.5]]))
x = constant([[1.0], [2.0]])
def fn():
    return reduce_mean(matmul(x, w))
for i in range(6):
    optimize(fn, 0.01)
)");
  if (recording) {
    obs::Ledger::Enable();
  } else {
    obs::Ledger::Disable();
  }
  for (auto _ : state) {
    interp.Run("optimize(fn, 0.01)\n");
  }
  if (recording) {
    state.counters["records_recorded"] =
        static_cast<double>(obs::Ledger::Global().TotalRecorded());
    obs::Ledger::Disable();
    obs::Ledger::Global().Reset();
  }
}
BENCHMARK(BM_LedgerOverhead)->Arg(0)->Arg(1);

void BM_LedgerRecord(benchmark::State& state) {
  // Cost of publishing one representative record while enabled: the price
  // a producer site pays on top of building the strings.
  obs::Ledger::Enable();
  for (auto _ : state) {
    obs::LedgerRecord record;
    record.kind = "run";
    record.unit = "0x55aa00112233";
    record.name = "loss_fn";
    record.level = 0;
    record.cache_hit = 1;
    record.validate_ns = 1200;
    record.execute_ns = 48000;
    record.ops = 21;
    obs::Ledger::Global().Record(std::move(record));
  }
  obs::Ledger::Disable();
  obs::Ledger::Global().Reset();
}
BENCHMARK(BM_LedgerRecord);

void BM_OptimizationPasses(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Graph g;
    NodeOutput v = g.Constant(Tensor::Scalar(1.0f));
    for (int i = 0; i < 200; ++i) {
      const NodeOutput c = g.Constant(Tensor::Scalar(static_cast<float>(i)));
      v = {g.AddNode("Add", {v, c}), 0};
    }
    std::vector<NodeOutput> fetches{v};
    state.ResumeTiming();
    benchmark::DoNotOptimize(OptimizeGraph(g, fetches));
  }
}
BENCHMARK(BM_OptimizationPasses);

}  // namespace
}  // namespace janus

// Expanded BENCHMARK_MAIN so the JSON context embeds how *our* sources
// were compiled; CI fails benchmark artifacts whose janus_build_type is
// not "release".
int main(int argc, char** argv) {
  benchmark::AddCustomContext("janus_build_type",
                              janus::bench::BuildTypeString());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
