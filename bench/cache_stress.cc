// Specialization-cache replay stress: a heavy-tailed (Zipf) request stream
// over many conversion units, driven through an engine whose cache budget
// is deliberately too small for the working set. Reports hit / miss /
// eviction / fallback rates and cache-lookup latency percentiles, plus a
// promotion A/B (identical hot workload with guard promotion on vs off)
// pricing the entry-check savings. Results land in BENCH_cache_stress.json.
//
// The run fails (non-zero exit) if the steady-state fallback-to-imperative
// rate reaches 5% or the budget pressure produced no evictions — the two
// properties the cache subsystem exists to hold under stress.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "frontend/builtins.h"

namespace janus::bench {
namespace {

constexpr int kNumModels = 24;
constexpr int kWarmupRequests = 800;
constexpr int kSteadyRequests = 2400;
constexpr double kZipfExponent = 1.1;

// Deterministic 64-bit LCG (same constants as MMIX) so runs are replayable.
struct Lcg {
  std::uint64_t state;
  double NextUnit() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 11) /
           static_cast<double>(1ULL << 53);
  }
};

// Zipf sampler over [0, n): rank r drawn with weight 1 / (r+1)^s.
struct Zipf {
  std::vector<double> cumulative;
  explicit Zipf(int n) {
    cumulative.reserve(static_cast<std::size_t>(n));
    double total = 0.0;
    for (int r = 0; r < n; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), kZipfExponent);
      cumulative.push_back(total);
    }
    for (double& c : cumulative) c /= total;
  }
  int Sample(Lcg& rng) const {
    const double u = rng.NextUnit();
    for (std::size_t r = 0; r < cumulative.size(); ++r) {
      if (u <= cumulative[r]) return static_cast<int>(r);
    }
    return static_cast<int>(cumulative.size()) - 1;
  }
};

struct Session {
  VariableStore variables;
  Rng rng{7};
  minipy::Interpreter interp{&variables, &rng};
  JanusEngine engine;

  explicit Session(EngineOptions options) : engine(&interp, options) {
    minipy::InstallBuiltins(interp);
    engine.Attach();
  }
};

EngineOptions StressOptions() {
  EngineOptions options;
  options.private_cache = true;
  // The working set is kNumModels units; budget half of it so the Zipf
  // tail keeps evicting and regenerating.
  options.cache.max_entries = kNumModels / 2;
  options.cache.max_entries_per_key = 2;
  return options;
}

// One loss function per model, with per-model weight/batch sizes so the
// compiled artifacts differ in size (exercising the byte accounting).
void DefineModels(Session& session) {
  std::string program;
  for (int m = 0; m < kNumModels; ++m) {
    const int features = 4 + (m % 8) * 4;
    const int rows = 4 + (m % 5) * 4;
    const std::string id = std::to_string(m);
    program += "w_" + id + " = variable('w_" + id + "', zeros([" +
               std::to_string(features) + ", 1]))\n";
    program += "b_" + id + " = zeros([" + std::to_string(rows) + ", " +
               std::to_string(features) + "])\n";
    program += "def loss_" + id + "():\n    return reduce_mean(matmul(b_" +
               id + ", w_" + id + "))\n";
  }
  session.interp.Run(program);
}

void Replay(Session& session, const Zipf& zipf, Lcg& rng, int requests) {
  for (int i = 0; i < requests; ++i) {
    const int model = zipf.Sample(rng);
    session.interp.Run("optimize(loss_" + std::to_string(model) +
                       ", 0.01)\n");
  }
}

std::int64_t CounterValue(const Session& session, const char* name) {
  const obs::Counter* counter = session.engine.metrics().FindCounter(name);
  return counter != nullptr ? counter->Value() : 0;
}

struct AbResult {
  std::int64_t validations = 0;
  std::int64_t validation_ns_total = 0;
  std::int64_t skips = 0;
  std::int64_t failures = 0;
};

// Hot single-unit workload measuring entry-check cost with promotion
// on/off. Same program, same iteration count, private engines.
AbResult RunPromotionArm(bool enable_promotion) {
  EngineOptions options;
  options.private_cache = true;
  options.cache.enable_promotion = enable_promotion;
  options.cache.promotion_runs = 16;
  options.cache.audit_interval = 32;
  Session session(options);
  session.interp.Run(R"(
w = variable('w', zeros([16, 1]))
b = zeros([8, 16])
def loss_fn():
    return reduce_mean(matmul(b, w))
for i in range(400):
    optimize(loss_fn, 0.01)
)");
  AbResult result;
  const obs::Histogram* validation =
      session.engine.metrics().FindHistogram("engine.validation_ns");
  if (validation != nullptr) {
    result.validations = validation->Count();
    result.validation_ns_total = validation->Sum();
  }
  result.skips = CounterValue(session, "cache.validation_skips");
  result.failures = session.engine.stats().assumption_failures;
  return result;
}

int Run(const char* out_path) {
  std::printf("Specialization-cache replay stress (%d models, Zipf s=%.2f, "
              "budget %d entries)\n\n",
              kNumModels, kZipfExponent, kNumModels / 2);

  Session session(StressOptions());
  DefineModels(session);
  const Zipf zipf(kNumModels);
  Lcg rng{2026};

  // Warmup: profiling runs + first generations for the popular head.
  Replay(session, zipf, rng, kWarmupRequests);
  const EngineStats warm = session.engine.stats();
  const std::int64_t warm_hits = CounterValue(session, "cache.hits");
  const std::int64_t warm_misses = CounterValue(session, "cache.misses");
  const std::int64_t warm_evictions =
      CounterValue(session, "cache.evictions");
  const std::int64_t warm_insertions =
      CounterValue(session, "cache.insertions");

  // Steady state: the measured window.
  Replay(session, zipf, rng, kSteadyRequests);
  const EngineStats stats = session.engine.stats();

  const std::int64_t hits = CounterValue(session, "cache.hits") - warm_hits;
  const std::int64_t misses =
      CounterValue(session, "cache.misses") - warm_misses;
  const std::int64_t evictions =
      CounterValue(session, "cache.evictions") - warm_evictions;
  const std::int64_t insertions =
      CounterValue(session, "cache.insertions") - warm_insertions;
  const std::int64_t fallbacks = stats.fallbacks - warm.fallbacks;
  const std::int64_t churn = CounterValue(session, "cache.churn_events");
  const std::int64_t despecializations =
      CounterValue(session, "cache.despecializations");

  // cache.hits counts every successful graph run, including the run right
  // after a regeneration insert; the resident-hit rate excludes those.
  const double hit_rate = static_cast<double>(hits - insertions) /
                          static_cast<double>(kSteadyRequests);
  const double eviction_rate =
      insertions > 0
          ? static_cast<double>(evictions) / static_cast<double>(insertions)
          : 0.0;
  const double fallback_rate = static_cast<double>(fallbacks) /
                               static_cast<double>(kSteadyRequests);

  const obs::Histogram* lookup =
      session.engine.metrics().FindHistogram("cache.lookup_ns");
  const std::int64_t lookup_p50 =
      lookup != nullptr ? lookup->Percentile(50) : 0;
  const std::int64_t lookup_p99 =
      lookup != nullptr ? lookup->Percentile(99) : 0;

  std::printf("steady state over %d requests:\n", kSteadyRequests);
  std::printf("  %-26s %8lld (resident-hit rate %.3f)\n", "graph runs",
              static_cast<long long>(hits), hit_rate);
  std::printf("  %-26s %8lld validated-none, %lld regenerations\n",
              "misses", static_cast<long long>(misses),
              static_cast<long long>(insertions));
  std::printf("  %-26s %8lld (per insertion %.3f)\n", "evictions",
              static_cast<long long>(evictions), eviction_rate);
  std::printf("  %-26s %8lld (rate %.4f)\n", "fallbacks",
              static_cast<long long>(fallbacks), fallback_rate);
  std::printf("  %-26s %8lld\n", "churn events",
              static_cast<long long>(churn));
  std::printf("  %-26s %8lld\n", "despecializations",
              static_cast<long long>(despecializations));
  std::printf("  %-26s %8lld / %lld ns\n", "lookup p50 / p99",
              static_cast<long long>(lookup_p50),
              static_cast<long long>(lookup_p99));

  // Promotion A/B on a quiet hot unit.
  const AbResult on = RunPromotionArm(true);
  const AbResult off = RunPromotionArm(false);
  const double check_reduction =
      off.validations > 0
          ? 1.0 - static_cast<double>(on.validations) /
                      static_cast<double>(off.validations)
          : 0.0;
  std::printf("\npromotion A/B (400 hot runs):\n");
  std::printf("  %-26s %8lld checks, %lld skips, %lld ns checking\n",
              "promotion on", static_cast<long long>(on.validations),
              static_cast<long long>(on.skips),
              static_cast<long long>(on.validation_ns_total));
  std::printf("  %-26s %8lld checks, %lld skips, %lld ns checking\n",
              "promotion off", static_cast<long long>(off.validations),
              static_cast<long long>(off.skips),
              static_cast<long long>(off.validation_ns_total));
  std::printf("  %-26s %7.1f%%\n", "entry checks avoided",
              check_reduction * 100.0);

  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"janus_build_type\": \"%s\",\n"
               "  \"requests\": %d,\n"
               "  \"models\": %d,\n"
               "  \"entry_budget\": %d,\n"
               "  \"hits\": %lld,\n"
               "  \"misses\": %lld,\n"
               "  \"evictions\": %lld,\n"
               "  \"insertions\": %lld,\n"
               "  \"fallbacks\": %lld,\n"
               "  \"churn_events\": %lld,\n"
               "  \"despecializations\": %lld,\n"
               "  \"hit_rate\": %.4f,\n"
               "  \"eviction_rate\": %.4f,\n"
               "  \"fallback_rate\": %.4f,\n"
               "  \"lookup_p50_ns\": %lld,\n"
               "  \"lookup_p99_ns\": %lld,\n"
               "  \"promotion_on_checks\": %lld,\n"
               "  \"promotion_on_skips\": %lld,\n"
               "  \"promotion_on_check_ns\": %lld,\n"
               "  \"promotion_off_checks\": %lld,\n"
               "  \"promotion_off_check_ns\": %lld,\n"
               "  \"promotion_check_reduction\": %.4f\n"
               "}\n",
               BuildTypeString(), kSteadyRequests, kNumModels,
               kNumModels / 2,
               static_cast<long long>(hits), static_cast<long long>(misses),
               static_cast<long long>(evictions),
               static_cast<long long>(insertions),
               static_cast<long long>(fallbacks),
               static_cast<long long>(churn),
               static_cast<long long>(despecializations), hit_rate,
               eviction_rate, fallback_rate,
               static_cast<long long>(lookup_p50),
               static_cast<long long>(lookup_p99),
               static_cast<long long>(on.validations),
               static_cast<long long>(on.skips),
               static_cast<long long>(on.validation_ns_total),
               static_cast<long long>(off.validations),
               static_cast<long long>(off.validation_ns_total),
               check_reduction);
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path);

  // The properties the subsystem must hold under budget stress.
  int failed = 0;
  if (eviction_rate < 0.30) {
    std::fprintf(stderr,
                 "FAIL: eviction rate %.3f < 0.30 — budget pressure did "
                 "not materialize\n",
                 eviction_rate);
    failed = 1;
  }
  if (fallback_rate >= 0.05) {
    std::fprintf(stderr,
                 "FAIL: steady-state fallback rate %.4f >= 0.05\n",
                 fallback_rate);
    failed = 1;
  }
  if (on.validations >= off.validations) {
    std::fprintf(stderr,
                 "FAIL: promotion did not reduce entry checks "
                 "(%lld on vs %lld off)\n",
                 static_cast<long long>(on.validations),
                 static_cast<long long>(off.validations));
    failed = 1;
  }
  if (failed == 0) std::printf("all stress criteria held\n");
  return failed;
}

}  // namespace
}  // namespace janus::bench

int main(int argc, char** argv) {
  return janus::bench::Run(argc > 1 ? argv[1]
                                    : "BENCH_cache_stress.json");
}
