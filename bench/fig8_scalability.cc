// Fig. 8: data-parallel scalability of ResNet50, Inception-v3, LM, and PPO
// on JANUS, Symbolic, and Imperative executors across worker counts.
//
// The paper's testbed (6 machines x 6 TITAN Xp over 100 Gbps InfiniBand) is
// reproduced on the discrete-event cluster simulator (src/sim), calibrated
// with per-iteration compute times measured on this host and gradient sizes
// taken from each model's real parameter store. Graph-based executors
// overlap allreduce with backward compute; the imperative executor issues
// ops synchronously (§6.3.2's explanation for TF Eager's poor scaling).
// A real ring allreduce (src/dist) is exercised by tests and examples; the
// timing here is simulated because the host has a single CPU.
#include <cstdio>

#include "bench/bench_util.h"
#include "sim/cluster.h"

namespace janus::bench {
namespace {

// Measures single-worker per-iteration compute seconds for a framework.
double MeasureIterationSeconds(const models::ModelSpec& spec,
                               const EngineOptions& options, int steps) {
  models::ModelSession session(spec, options);
  const ThroughputResult result = MeasureThroughput(session, 10, steps);
  return result.seconds / result.iterations;
}

// Total gradient bytes = total float parameter bytes of the model.
std::int64_t GradientBytes(const models::ModelSpec& spec) {
  models::ModelSession session(spec, ImperativeConfig());
  session.Step();  // materialise variables
  std::int64_t bytes = 0;
  minipy::Interpreter& interp = session.interpreter();
  for (const std::string& name : interp.variables()->Names()) {
    const Tensor& t = interp.variables()->Read(name);
    if (t.dtype() == DType::kFloat32) bytes += t.num_elements() * 4;
  }
  return bytes;
}

// Splits measured compute across synthetic layers (1/3 forward, 2/3
// backward, paper-typical) with gradients spread evenly.
std::vector<sim::LayerCost> MakeLayers(double iteration_seconds,
                                       std::int64_t gradient_bytes,
                                       int layers,
                                       double comm_scale) {
  std::vector<sim::LayerCost> result(static_cast<std::size_t>(layers));
  for (auto& layer : result) {
    layer.forward_s = iteration_seconds / 3.0 / layers;
    layer.backward_s = iteration_seconds * 2.0 / 3.0 / layers;
    layer.gradient_bytes =
        static_cast<std::int64_t>(gradient_bytes * comm_scale) / layers;
  }
  return result;
}

void PrintModel(const char* name, const std::vector<int>& worker_counts,
                double comm_scale, int layers) {
  const models::ModelSpec& spec = models::FindModel(name);
  const int steps = 16;
  const double janus_s = MeasureIterationSeconds(spec, JanusConfig(), steps);
  const double sym_s = MeasureIterationSeconds(spec, SymbolicConfig(), steps);
  const double imp_s =
      MeasureIterationSeconds(spec, ImperativeConfig(), steps / 2);
  const std::int64_t grad_bytes = GradientBytes(spec);

  // The paper's LM has 0.83B parameters; our scaled-down replica's gradient
  // volume is scaled up relative to compute via comm_scale so the
  // network-to-compute ratio matches the paper's testbed (see
  // EXPERIMENTS.md calibration notes).
  sim::ClusterConfig cluster;
  // The imperative executor drives each ring step from the framework loop;
  // use the same calibrated dispatch cost as the single-machine benches.
  cluster.imperative_op_overhead_s = 50e-6;
  const double items = spec.items_per_iteration;

  std::printf("\n%s (grad bytes %lld, comm scale x%.0f)\n", name,
              static_cast<long long>(grad_bytes), comm_scale);
  std::printf("  %-11s", "workers");
  for (const int w : worker_counts) std::printf(" %9d", w);
  std::printf("\n");

  const struct {
    const char* label;
    double iter_s;
    sim::ExecutionStyle style;
  } rows[] = {
      {"JANUS", janus_s, sim::ExecutionStyle::kGraphOverlapped},
      {"Symbolic", sym_s, sim::ExecutionStyle::kGraphOverlapped},
      {"Imperative", imp_s, sim::ExecutionStyle::kImperativeSerial},
  };
  for (const auto& row : rows) {
    const auto layers_cost = MakeLayers(row.iter_s, grad_bytes, layers,
                                        comm_scale);
    const auto points = sim::SimulateScaling(cluster, layers_cost, row.style,
                                             worker_counts, items);
    std::printf("  %-11s", row.label);
    for (const auto& point : points) std::printf(" %9.0f", point.throughput);
    std::printf("   items/s (scale factor %.2f at %d)\n",
                points.back().scale_factor, points.back().workers);
  }
}

int Run() {
  std::printf("Fig. 8: simulated data-parallel scalability\n");
  PrintModel("ResNet50", {1, 3, 6, 12, 24, 36}, 40, 8);
  PrintModel("Inception-v3", {1, 3, 6, 12, 24, 36}, 40, 8);
  PrintModel("LM", {1, 2, 3, 6, 12}, 3000, 4);
  PrintModel("PPO", {1, 2, 3, 4, 5, 6}, 30, 4);
  std::printf(
      "\nExpected shape (paper): scale factors ~0.77-0.81 for JANUS and\n"
      "Symbolic on the CNNs, ~0.18 on the network-bound LM (saturating\n"
      "beyond 2 machines), while the Imperative executor stalls at ~0.24\n"
      "because it cannot overlap communication with computation.\n");
  return 0;
}

}  // namespace
}  // namespace janus::bench

int main() { return janus::bench::Run(); }
