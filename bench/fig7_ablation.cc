// Fig. 7: the contribution of each optimisation to training throughput,
// cumulative across configurations:
//   IMP   — imperative executor (TF Eager analogue)
//   BASE  — graph conversion only: conservative control-flow ops, no
//           specialisation, sequential executor
//   +UNRL — speculative unrolling of stable branches/loops + call inlining
//   +SPCN — type/shape/constant specialisation + post-processing passes
//   +PARL — multi-threaded graph executor (default JANUS configuration)
// An extra row measures JANUS with AssertOps disabled (§6.3.1: assumption
// validation cost is negligible).
#include <cstdio>

#include "bench/bench_util.h"

namespace janus::bench {
namespace {

EngineOptions BaseConfig() {
  EngineOptions options = JanusConfig();
  options.generator.speculative_unroll = false;
  options.generator.specialize = false;
  options.parallel_execution = false;
  return options;
}

EngineOptions UnrollConfig() {
  EngineOptions options = BaseConfig();
  options.generator.speculative_unroll = true;
  return options;
}

EngineOptions SpecializeConfig() {
  EngineOptions options = UnrollConfig();
  options.generator.specialize = true;
  return options;
}

EngineOptions ParallelConfig() {
  EngineOptions options = SpecializeConfig();
  options.parallel_execution = true;
  return options;
}

EngineOptions NoAssertConfig() {
  EngineOptions options = ParallelConfig();
  options.generator.insert_assertions = false;
  return options;
}

int Run() {
  std::printf("Fig. 7: cumulative optimisation speedups over IMP\n");
  std::printf("%-14s %10s %8s %8s %8s %8s %10s\n", "Model", "IMP(it/s)",
              "BASE", "+UNRL", "+SPCN", "+PARL", "-asserts");
  PrintRule(76);

  const struct {
    const char* label;
    EngineOptions (*config)();
  } configs[] = {
      {"BASE", BaseConfig},       {"+UNRL", UnrollConfig},
      {"+SPCN", SpecializeConfig}, {"+PARL", ParallelConfig},
      {"-asserts", NoAssertConfig},
  };

  for (const models::ModelSpec& spec : models::ModelZoo()) {
    const bool heavy = spec.name == "ResNet50" || spec.name == "Inception-v3" ||
                       spec.name == "LM" || spec.name == "pix2pix";
    const int steps = heavy ? 20 : 40;

    models::ModelSession imperative(spec, ImperativeConfig());
    const ThroughputResult imp = MeasureThroughput(imperative, 2, steps / 2);

    std::printf("%-14s %10.1f", spec.name.c_str(), imp.items_per_second);
    for (const auto& config : configs) {
      models::ModelSession session(spec, config.config());
      const ThroughputResult result = MeasureThroughput(session, 10, steps);
      std::printf(" %7.2fx",
                  result.items_per_second / imp.items_per_second);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  PrintRule(76);
  std::printf(
      "Expected shape (paper): BASE alone up to ~4.9x; +UNRL helps RNNs\n"
      "(2.09x on LSTM); +SPCN small additional gains; +PARL biggest on\n"
      "TreeNNs (muted here: single-core host, see EXPERIMENTS.md); the\n"
      "-asserts column matches +PARL within noise (assertion cost ~0).\n");
  return 0;
}

}  // namespace
}  // namespace janus::bench

int main() { return janus::bench::Run(); }
