// Table 3: single-machine training throughput of all 11 models under
// (A) the imperative executor, (B) JANUS, and (C) the symbolic baseline.
// Prints the same columns the paper reports: absolute throughput, the
// JANUS-over-imperative speedup (B)/(A), and the gap to the symbolic upper
// bound (B)/(C) - 1.
#include <cstdio>

#include "bench/bench_util.h"

namespace janus::bench {
namespace {

int Run() {
  std::printf("Table 3: single-machine training throughput\n");
  std::printf("%-14s %-12s %12s %12s %12s %9s %9s\n", "Model", "Unit",
              "(A) Imp.", "(B) JANUS", "(C) Sym.", "(B)/(A)", "(B)/(C)-1");
  PrintRule(86);

  // Iteration budget per model (heavier models get fewer iterations). The
  // warmup must cover both batch shapes (every 8th batch is smaller) so
  // shape relaxation completes before measurement.
  const auto budget = [](const std::string& name) {
    if (name == "ResNet50" || name == "Inception-v3" || name == "LM" ||
        name == "pix2pix") {
      return std::pair<int, int>{10, 24};
    }
    return std::pair<int, int>{10, 48};
  };

  for (const models::ModelSpec& spec : models::ModelZoo()) {
    const auto [warmup, steps] = budget(spec.name);

    models::ModelSession imperative(spec, ImperativeConfig());
    const ThroughputResult imp = MeasureThroughput(imperative, 2, steps / 2);

    models::ModelSession janus_session(spec, JanusConfig());
    const ThroughputResult jns = MeasureThroughput(janus_session, warmup, steps);

    models::ModelSession symbolic(spec, SymbolicConfig());
    const ThroughputResult sym = MeasureThroughput(symbolic, warmup, steps);

    std::printf("%-14s %-12s %12.1f %12.1f %12.1f %8.2fx %8.1f%%\n",
                spec.name.c_str(), spec.unit.c_str(), imp.items_per_second,
                jns.items_per_second, sym.items_per_second,
                jns.items_per_second / imp.items_per_second,
                (jns.items_per_second / sym.items_per_second - 1.0) * 100.0);
    std::fflush(stdout);
  }
  PrintRule(86);
  std::printf(
      "Expected shape (paper): (B)/(A) from ~1.06x (coarse-grained CNNs) to\n"
      "~47.6x (TreeRNN); (B)/(C)-1 within a few percent of zero.\n");
  return 0;
}

}  // namespace
}  // namespace janus::bench

int main() { return janus::bench::Run(); }
