// Dynamic features tour: the three Python behaviours of paper §2.1 —
// dynamic control flow (DCF), dynamic types (DT), and impure functions
// (IF) — all converted speculatively and guarded by runtime assertions.
// The example then *breaks* an assumption on purpose and shows the
// fallback + regeneration cycle of Fig. 2.
#include <cstdio>

#include "core/engine.h"
#include "frontend/builtins.h"

int main() {
  using namespace janus;
  VariableStore variables;
  Rng rng(7);
  minipy::Interpreter interp(&variables, &rng);
  minipy::InstallBuiltins(interp);
  JanusEngine engine(&interp, EngineOptions{});
  engine.Attach();

  interp.Run(R"(
# IF: a model object whose attribute carries state across steps.
class Scaler:
    def __init__(self):
        self.gain = constant([1.0])
    def step(self, x):
        # DCF: a data-dependent branch; DT: `x` may be any tensor shape.
        if reduce_sum(x) > 0.0:
            out = reduce_sum(x * self.gain)
        else:
            out = reduce_sum(x * x)
        self.gain = self.gain * 1.01
        return out

model = Scaler()
data = constant([1.0, 2.0, 3.0])

def run_once():
    return model.step(data)

print('-- warm-up: positive inputs, stable branch --')
for i in range(6):
    out = optimize(run_once, 0.0)
print('out with growing gain:', out)
)");

  const auto before = engine.stats();
  std::printf("[C++] after warm-up: generations=%lld graph runs=%lld "
              "failures=%lld\n",
              static_cast<long long>(before.graph_generations),
              static_cast<long long>(before.graph_executions),
              static_cast<long long>(before.assumption_failures));

  // Flip the branch: the speculative AssertOp fails, JANUS falls back to
  // the imperative executor (state untouched!), then regenerates a graph
  // with a dynamic Switch/Merge conditional.
  interp.Run(R"(
print('-- flipping the branch: negative inputs --')
data = constant([-1.0, -2.0, -3.0])
for i in range(4):
    out = optimize(run_once, 0.0)
print('out on the other branch:', out)
)");

  const auto after = engine.stats();
  std::printf("[C++] after the flip: +generations=%lld +failures=%lld "
              "+fallbacks=%lld\n",
              static_cast<long long>(after.graph_generations -
                                     before.graph_generations),
              static_cast<long long>(after.assumption_failures -
                                     before.assumption_failures),
              static_cast<long long>(after.fallbacks - before.fallbacks));
  std::printf("The flip was caught by an AssertOp; no state was committed "
              "by the aborted run (deferred state update, paper §4.2.3).\n");
  return after.assumption_failures > before.assumption_failures ? 0 : 1;
}
