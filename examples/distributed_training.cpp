// Data-parallel training example (§5's Horovod integration, in-process):
// four workers train replicas of one model on disjoint data shards; after
// every step a real ring allreduce averages the replicas' parameters —
// mathematically identical to gradient averaging for SGD. Each worker's
// JANUS engine converts its training step independently.
#include <cstdio>

#include "dist/trainer.h"

int main() {
  using namespace janus;

  dist::DataParallelTrainer trainer(/*num_workers=*/4, EngineOptions{},
                                    /*seed=*/5);
  // Each worker regresses onto a different target slope; the averaged
  // objective's optimum is the mean slope — reached only if the allreduce
  // keeps replicas in sync.
  trainer.RunOnAll(R"(
w = variable('w', constant([[0.0]]))
def loss_fn():
    slope = 1.0 + 1.0 * worker_rank     # shard-specific target
    x = fill([8, 1], 1.0 + 0.25 * worker_rank)
    y = x * slope
    pred = matmul(x, w)
    err = pred - y
    return reduce_mean(err * err)
)");

  std::printf("4 workers, ring allreduce after every step\n");
  double loss = 0.0;
  for (int step = 0; step < 50; ++step) {
    loss = trainer.Step("loss = optimize(loss_fn, 0.02)\n");
    if (step % 10 == 0) {
      std::printf("  step %2d  mean loss %8.4f  replicas in sync: %s\n",
                  step, loss, trainer.ReplicasInSync() ? "yes" : "NO");
    }
  }

  const float w = trainer.variables(0).Read("w").data<float>()[0];
  std::printf("\nlearned shared slope w = %.3f (weighted mean of "
              "{1, 2, 3, 4})\n", w);
  std::printf("worker 0 executed %lld converted graphs\n",
              static_cast<long long>(
                  trainer.engine(0).stats().graph_executions));
  return trainer.ReplicasInSync() &&
                 trainer.engine(0).stats().graph_executions > 0
             ? 0
             : 1;
}
