// Recursive-model example: a TreeLSTM sentiment classifier over per-sample
// tree objects — the hardest conversion case in the paper's evaluation
// (recursion + base/inductive conditionals + dynamic attribute types; the
// tracing baseline cannot convert it at all). JANUS compiles the recursive
// function into an InvokeOp graph with dynamic object pointers and trains
// through it.
#include <cstdio>

#include "models/zoo.h"

int main() {
  using namespace janus;
  using namespace janus::models;

  const ModelSpec& spec = FindModel("TreeLSTM");
  ModelSession session(spec, EngineOptions{}, /*seed=*/13);

  std::printf("training a TreeLSTM on synthetic sentiment trees...\n");
  double accuracy_before = session.Eval();
  for (int step = 0; step < 220; ++step) {
    const double loss = session.Step();
    if (step % 40 == 0) {
      std::printf("  step %3d  loss %.4f\n", step, loss);
    }
  }
  const double accuracy_after = session.Eval();

  const EngineStats& stats = session.engine().stats();
  std::printf("\naccuracy: %.2f -> %.2f (averaged over fresh trees)\n",
              accuracy_before, accuracy_after);
  std::printf("graph executions %lld | generations %lld | refusals %lld\n",
              static_cast<long long>(stats.graph_executions),
              static_cast<long long>(stats.graph_generations),
              static_cast<long long>(stats.not_convertible));
  std::printf(
      "every tree is a fresh heap object: the converted graph walks it\n"
      "through PyGetAttr pointer dereferences and recursive InvokeOps.\n");
  return stats.graph_executions > 0 && accuracy_after > 0.6 ? 0 : 1;
}
