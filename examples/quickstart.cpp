// Quickstart: train a small model written as an imperative MiniPy program,
// transparently converted to a symbolic dataflow graph by JANUS.
//
// What to look for in the output:
//  * the first `profile_threshold` (3) steps run on the imperative executor
//    while the Profiler gathers context observations,
//  * the 4th step triggers speculative graph generation; every later step
//    executes the cached graph,
//  * the final statistics show the Fig. 2 execution-model counters.
#include <cstdio>

#include "core/engine.h"
#include "frontend/builtins.h"

int main() {
  using namespace janus;

  // A session: shared parameter store + seeded RNG + interpreter + engine.
  VariableStore variables;
  Rng rng(42);
  minipy::Interpreter interp(&variables, &rng);
  minipy::InstallBuiltins(interp);

  JanusEngine engine(&interp, EngineOptions{});
  engine.Attach();  // installs the profiler, interceptor, and optimize()

  // An imperative DL program: dynamic typing, a Python-style loop, and a
  // model object — exactly the style of the paper's Figure 1.
  interp.Run(R"(
w = variable('w', randn([2, 1], 0.5))
b = variable('b', zeros([1]))
x = constant([[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]])
y = constant([[0.0], [1.0], [1.0], [2.0]])

def loss_fn():
    pred = matmul(x, w) + b
    err = pred - y
    return reduce_mean(err * err)

print('training y = x0 + x1 ...')
for step in range(40):
    loss = optimize(loss_fn, 0.1)
    if step % 10 == 0:
        print('step', step, 'loss', float(loss))
print('final loss', float(loss))
)");

  const EngineStats& stats = engine.stats();
  std::printf("\n--- JANUS engine statistics ---\n");
  std::printf("imperative (profiling) executions : %lld\n",
              static_cast<long long>(stats.imperative_executions));
  std::printf("graph generations                 : %lld\n",
              static_cast<long long>(stats.graph_generations));
  std::printf("graph executions                  : %lld\n",
              static_cast<long long>(stats.graph_executions));
  std::printf("assumption failures / fallbacks   : %lld / %lld\n",
              static_cast<long long>(stats.assumption_failures),
              static_cast<long long>(stats.fallbacks));

  // Full report: decision-loop counters, per-phase latency histograms,
  // sampled kernel timers, buffer-pool traffic. For a timeline view, run
  // with JANUS_TRACE=trace.json and open the file in chrome://tracing.
  std::printf("\n%s", engine.StatsReport().c_str());

  const float learned_w0 = variables.Read("w").data<float>()[0];
  std::printf("\nlearned w[0] = %.3f (expect ~1.0)\n", learned_w0);
  return stats.graph_executions > 0 && learned_w0 > 0.8f ? 0 : 1;
}
